// Package predictor implements the demand-prediction algorithms of
// §IV.C: exponential smoothing (Eq. 1) to follow the trend of how many
// containers of a runtime type are needed, a Markov chain over region
// states (Eq. 2) to absorb random volatility, and the combined
// ES+Markov predictor that HotC's adaptive live-container control
// (Algorithm 3) uses.
//
// All predictors share the same protocol: Observe one demand sample
// per control interval, then Predict the next interval's demand. The
// Backtest helper produces the one-step-ahead prediction series used
// for the Fig. 10 evaluation.
package predictor

import (
	"fmt"
	"math"
	"sort"
)

// Predictor is a one-step-ahead time-series forecaster.
type Predictor interface {
	// Name identifies the strategy in reports.
	Name() string
	// Observe records the actual demand of the interval that just
	// ended.
	Observe(v float64)
	// Predict forecasts the next interval's demand. With no
	// observations it returns 0.
	Predict() float64
}

// DefaultAlpha is the smoothing coefficient the paper selects: "In
// this research, we choose α as 0.8" (§IV.C.2) — a large α because
// serverless request series fluctuate significantly.
const DefaultAlpha = 0.8

// DefaultInitWindow is the number of leading observations averaged to
// seed the smoothed value: "the average value of the first five
// historical data can be used" (§IV.C.2).
const DefaultInitWindow = 5

// ES is the exponential smoothing predictor of Eq. 1:
//
//	e[t] = α·history[t] + (1−α)·e[t−1]
//
// The initial value is the mean of the first InitWindow observations,
// per §IV.C.2.
type ES struct {
	// Alpha is the smoothing coefficient in (0, 1).
	Alpha float64
	// InitWindow is the number of leading samples averaged for the
	// initial value.
	InitWindow int

	seen    int
	leadSum float64
	est     float64
}

// NewES returns an exponential smoother with the given α and the
// paper's default initialisation window. It panics if α is outside
// (0, 1).
func NewES(alpha float64) *ES {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("predictor: alpha %v outside (0,1)", alpha))
	}
	return &ES{Alpha: alpha, InitWindow: DefaultInitWindow}
}

// Name implements Predictor.
func (e *ES) Name() string { return fmt.Sprintf("es(α=%.2f)", e.Alpha) }

// Observe implements Predictor.
func (e *ES) Observe(v float64) {
	e.seen++
	if e.seen <= e.InitWindow {
		// Still building the initial value: the smoothed estimate is
		// the running mean of the leading samples.
		e.leadSum += v
		e.est = e.leadSum / float64(e.seen)
		return
	}
	e.est = e.Alpha*v + (1-e.Alpha)*e.est
}

// Predict implements Predictor.
func (e *ES) Predict() float64 {
	if e.seen == 0 {
		return 0
	}
	return e.est
}

// Markov is the region-state Markov chain predictor of Eq. 2. The
// observed value range is divided into States equal intervals
// R_i = [R_i1, R_i2]; transitions between consecutive observations are
// counted into a transition matrix; the forecast is the midpoint of
// the most likely next state given the current one:
//
//	e[k+1] = (R_i1 + R_i2) / 2
type Markov struct {
	// States is the number of region states n.
	States int

	obs []float64
	min float64
	max float64
}

// DefaultStates is the region-state count used when the caller does
// not specify one.
const DefaultStates = 8

// NewMarkov returns a Markov-chain predictor with n region states. It
// panics if n < 2.
func NewMarkov(n int) *Markov {
	if n < 2 {
		panic(fmt.Sprintf("predictor: markov needs >= 2 states, got %d", n))
	}
	return &Markov{States: n}
}

// Name implements Predictor.
func (m *Markov) Name() string { return fmt.Sprintf("markov(n=%d)", m.States) }

// Observe implements Predictor.
func (m *Markov) Observe(v float64) {
	if len(m.obs) == 0 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	m.obs = append(m.obs, v)
}

// stateOf maps a value to its region state index in [0, States).
func (m *Markov) stateOf(v float64) int {
	if m.max <= m.min {
		return 0
	}
	width := (m.max - m.min) / float64(m.States)
	i := int((v - m.min) / width)
	if i >= m.States {
		i = m.States - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// midpoint returns the centre value of region state i.
func (m *Markov) midpoint(i int) float64 {
	if m.max <= m.min {
		return m.min
	}
	width := (m.max - m.min) / float64(m.States)
	return m.min + (float64(i)+0.5)*width
}

// TransitionMatrix estimates the k-step transition probability matrix
// P(k) from the observation history: P_ij(k) = T_ij(k)/T_i, where T_i
// counts visits to state R_i with a successor k steps later and
// T_ij(k) counts transitions R_i -> R_j after k steps (Eq. 2). Rows
// with no data are uniform.
func (m *Markov) TransitionMatrix(k int) [][]float64 {
	if k < 1 {
		panic(fmt.Sprintf("predictor: transition step k=%d must be >= 1", k))
	}
	counts := make([][]float64, m.States)
	totals := make([]float64, m.States)
	for i := range counts {
		counts[i] = make([]float64, m.States)
	}
	for t := 0; t+k < len(m.obs); t++ {
		i := m.stateOf(m.obs[t])
		j := m.stateOf(m.obs[t+k])
		counts[i][j]++
		totals[i]++
	}
	for i := range counts {
		if totals[i] == 0 {
			for j := range counts[i] {
				counts[i][j] = 1 / float64(m.States)
			}
			continue
		}
		for j := range counts[i] {
			counts[i][j] /= totals[i]
		}
	}
	return counts
}

// Predict implements Predictor: from the current state (of the latest
// observation), the forecast is the midpoint of the most likely next
// state under the 1-step transition matrix.
func (m *Markov) Predict() float64 {
	n := len(m.obs)
	if n == 0 {
		return 0
	}
	if n == 1 || m.max <= m.min {
		return m.obs[n-1]
	}
	p := m.TransitionMatrix(1)
	cur := m.stateOf(m.obs[n-1])
	return m.midpoint(argmaxFrom(p[cur], cur))
}

// PredictK forecasts k steps ahead using the k-step transition matrix
// P(k) of Eq. 2: the forecast is the midpoint of the most likely state
// k steps from the current one. PredictK(1) equals Predict.
func (m *Markov) PredictK(k int) float64 {
	n := len(m.obs)
	if n == 0 {
		return 0
	}
	if n <= k || m.max <= m.min {
		return m.obs[n-1]
	}
	p := m.TransitionMatrix(k)
	cur := m.stateOf(m.obs[n-1])
	return m.midpoint(argmaxFrom(p[cur], cur))
}

// argmaxFrom returns the index of the largest element of row, breaking
// ties toward seed: starting the scan with best=seed at its actual
// probability means a row with no dominant transition (e.g. a uniform
// never-visited state) forecasts staying put instead of collapsing to
// the minimum-demand region at index 0.
func argmaxFrom(row []float64, seed int) int {
	best, bestP := seed, row[seed]
	for j, pj := range row {
		if pj > bestP {
			best, bestP = j, pj
		}
	}
	return best
}

// PredictExpected forecasts the next value as the probability-weighted
// average of region-state midpoints under the 1-step transition matrix
// (the expectation rather than the maximum-likelihood state). The
// Combined predictor uses this smoother form for its error correction.
func (m *Markov) PredictExpected() float64 {
	n := len(m.obs)
	if n == 0 {
		return 0
	}
	if n == 1 || m.max <= m.min {
		return m.obs[n-1]
	}
	p := m.TransitionMatrix(1)
	cur := m.stateOf(m.obs[n-1])
	sum := 0.0
	for j, pj := range p[cur] {
		sum += pj * m.midpoint(j)
	}
	return sum
}

// Combined is HotC's predictor (§IV.C.3): exponential smoothing fits
// the trend of the non-stationary series, and a Markov chain over the
// *relative error* of the smoothing predictions absorbs volatility:
//
//	corrected = es_forecast + E[next_error | error state] × |es_forecast|
//
// Forecasts are clamped to be non-negative (a container count).
//
// The error chain follows Eq. 2 — relative errors are discretised into
// region states over intervals determined from historical data, and
// transitions counted — with three estimation refinements over the
// bare construction (each kept because it measurably improves accuracy
// on the paper's workload shapes, see the fig10 bench and ablations):
// the correction is the conditional expectation of the successor error
// rather than a state midpoint (no discretisation bias); the state
// intervals span the winsorized error range so a single jump outlier
// cannot blur the informative small errors together; and the applied
// correction is shrunk by its standard error, so states whose
// successors are statistically indistinguishable from noise contribute
// nothing instead of adding variance.
type Combined struct {
	es     *ES
	states int
	warmup int // observations before corrections kick in
	seen   int

	errs []float64 // relative-error history of the ES forecast
}

// NewCombined returns the ES+Markov predictor with the given α and
// number of error region states.
func NewCombined(alpha float64, states int) *Combined {
	if states < 2 {
		panic(fmt.Sprintf("predictor: combined needs >= 2 error states, got %d", states))
	}
	return &Combined{
		es:     NewES(alpha),
		states: states,
		warmup: DefaultInitWindow,
	}
}

// Default returns the predictor with the paper's parameters (α = 0.8).
func Default() *Combined { return NewCombined(DefaultAlpha, DefaultStates) }

// Name implements Predictor.
func (c *Combined) Name() string { return "hotc(es+markov)" }

// Observe implements Predictor.
func (c *Combined) Observe(v float64) {
	// Record the relative error of the forecast we would have made for
	// this interval, then update the trend.
	if c.seen > 0 {
		base := c.es.Predict()
		den := math.Abs(base)
		if den < 1 {
			den = 1 // relative error of a near-zero forecast: use absolute scale
		}
		c.errs = append(c.errs, (v-base)/den)
		// Bound the history so state estimation stays O(n log n) with
		// a small constant and adapts to workload drift.
		if len(c.errs) > 512 {
			c.errs = c.errs[len(c.errs)-256:]
		}
	}
	c.es.Observe(v)
	c.seen++
}

// nextErr is the Markov correction: the conditional expectation of the
// successor error given the current error's region state, estimated by
// counting transitions in the error history. Region states are
// equal-width intervals over the *winsorized* error range (5th to 95th
// percentile, outliers clamped into the edge states) — the paper's
// "interval can be determined based on historical data" — so a single
// outlier error from a demand jump cannot stretch the partition and
// blur the informative small errors together.
func (c *Combined) nextErr() float64 {
	n := len(c.errs)
	if n < 2 {
		return 0
	}
	sorted := append([]float64(nil), c.errs...)
	sort.Float64s(sorted)
	lo := sorted[n*5/100]
	hi := sorted[n-1-n*5/100]
	if hi <= lo {
		return 0 // errors essentially constant: nothing to learn
	}
	width := (hi - lo) / float64(c.states)
	state := func(e float64) int {
		s := int((e - lo) / width)
		if s < 0 {
			return 0
		}
		if s >= c.states {
			return c.states - 1
		}
		return s
	}
	// Second-order conditioning: the pair (previous state, current
	// state) disambiguates a sustained ramp (lag, lag) from alternating
	// plateau noise (over, under), which share single-state bins.
	// Sparse pairs fall back to first-order conditioning.
	predictFrom := func(match func(t int) bool) (float64, float64, int) {
		sum, sum2, count := 0.0, 0.0, 0
		for t := 0; t+1 < n; t++ {
			if match(t) {
				sum += c.errs[t+1]
				sum2 += c.errs[t+1] * c.errs[t+1]
				count++
			}
		}
		if count == 0 {
			return 0, 0, 0
		}
		mean := sum / float64(count)
		variance := sum2/float64(count) - mean*mean
		if variance < 0 {
			variance = 0
		}
		return mean, variance, count
	}
	cur := state(c.errs[n-1])
	var mean, variance float64
	var count int
	if n >= 3 {
		prev := state(c.errs[n-2])
		mean, variance, count = predictFrom(func(t int) bool {
			return t >= 1 && state(c.errs[t]) == cur && state(c.errs[t-1]) == prev
		})
	}
	if count < 4 {
		mean, variance, count = predictFrom(func(t int) bool {
			return state(c.errs[t]) == cur
		})
	}
	if count == 0 {
		return 0
	}
	// Shrink the correction by its standard error: in states whose
	// successor errors are pure noise the estimate is not
	// distinguishable from zero and applying it would only add
	// variance; on systematic-lag states (ramps) the mean dwarfs the
	// standard error and survives almost untouched.
	stderr := math.Sqrt(variance / float64(count))
	mag := math.Abs(mean) - stderr
	if mag <= 0 {
		return 0
	}
	if mean < 0 {
		return -mag
	}
	return mag
}

// Predict implements Predictor.
func (c *Combined) Predict() float64 {
	base := c.es.Predict()
	if c.seen <= c.warmup {
		return clampNonNegative(base)
	}
	den := math.Abs(base)
	if den < 1 {
		den = 1
	}
	return clampNonNegative(base + c.nextErr()*den)
}

func clampNonNegative(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// Seasonal is the periodic-analysis predictor the paper's §III.B
// attributes to industry practice ("they used periodic data analysis
// ... to improve the accuracy"): it predicts the value observed one
// period ago (seasonal naive), falling back to the last value until a
// full period of history exists. It shines on workloads with strict
// daily/weekly periodicity and fails on aperiodic ones — the ablation
// table contrasts it with HotC's ES+Markov.
type Seasonal struct {
	// Period is the season length in observations.
	Period int

	obs []float64
}

// NewSeasonal returns a seasonal-naive predictor with the given period.
// It panics if period < 1.
func NewSeasonal(period int) *Seasonal {
	if period < 1 {
		panic(fmt.Sprintf("predictor: seasonal period %d must be >= 1", period))
	}
	return &Seasonal{Period: period}
}

// Name implements Predictor.
func (s *Seasonal) Name() string { return fmt.Sprintf("seasonal(period=%d)", s.Period) }

// Observe implements Predictor.
func (s *Seasonal) Observe(v float64) {
	s.obs = append(s.obs, v)
	if len(s.obs) > 8*s.Period && s.Period > 1 {
		s.obs = s.obs[len(s.obs)-4*s.Period:]
	}
}

// Predict implements Predictor: the observation one period back.
func (s *Seasonal) Predict() float64 {
	n := len(s.obs)
	if n == 0 {
		return 0
	}
	// The next value is forecast by the observation Period-1 behind
	// the latest (which itself is one period before the next).
	if n >= s.Period {
		return s.obs[n-s.Period]
	}
	return s.obs[n-1]
}

// Naive predicts the last observed value; it is the no-intelligence
// baseline for ablations.
type Naive struct {
	seen bool
	last float64
}

// NewNaive returns a last-value predictor.
func NewNaive() *Naive { return &Naive{} }

// Name implements Predictor.
func (n *Naive) Name() string { return "naive(last-value)" }

// Observe implements Predictor.
func (n *Naive) Observe(v float64) { n.last, n.seen = v, true }

// Predict implements Predictor.
func (n *Naive) Predict() float64 {
	if !n.seen {
		return 0
	}
	return n.last
}

// Backtest runs pred over the series, producing the one-step-ahead
// forecast for each element: out[i] is the prediction made *before*
// observing series[i]. This is the Fig. 10 evaluation protocol.
func Backtest(pred Predictor, series []float64) []float64 {
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = pred.Predict()
		pred.Observe(v)
	}
	return out
}
