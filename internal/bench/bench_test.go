package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"hotc/internal/faas"
	"hotc/internal/faults"
	"hotc/internal/metrics"
	"hotc/internal/trace"
)

func TestFig01Shape(t *testing.T) {
	results := fig01Results(6)
	var all metrics.Series
	firsts := map[int]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("request failed: %v", r.Err)
		}
		all.AddDuration(r.Timestamps.Total())
		if r.Request.Round%10 == 0 && r.Reused {
			firsts[r.Request.Round] = true
		}
		if r.Request.Round%10 != 0 && !r.Reused {
			t.Fatalf("non-first burst request %d cold-started", r.Request.Round)
		}
	}
	if len(firsts) != 0 {
		t.Fatalf("burst-first requests reused: %v (30min idle > 15min keep-alive)", firsts)
	}
	// The paper's ratios: highest ~1.4x lowest, ~1.3x mean. Our model
	// is more extreme for tiny functions; just require a visible gap
	// and a long tail.
	if all.Max() <= 1.2*all.Min() {
		t.Fatalf("no cold-start spread: min=%v max=%v", all.Min(), all.Max())
	}
	if all.Percentile(99) <= all.Percentile(50) {
		t.Fatal("no long tail")
	}
	rep := Fig01(6)
	if len(rep.Tables) != 2 || len(rep.Notes) == 0 {
		t.Fatal("fig01 report incomplete")
	}
}

func TestFig02Shape(t *testing.T) {
	rep := Fig02(2000)
	if len(rep.Tables) != 2 {
		t.Fatal("fig02 needs two tables")
	}
	if len(rep.Tables[0].Rows) != 10 {
		t.Fatalf("top-10 table has %d rows", len(rep.Tables[0].Rows))
	}
	if !strings.Contains(rep.String(), "ubuntu") {
		t.Fatal("expected ubuntu among top base images")
	}
}

func TestFig04Shape(t *testing.T) {
	rep := Fig04()
	if len(rep.Tables) != 3 {
		t.Fatal("fig04 needs three tables")
	}
	out := rep.String()
	for _, want := range []string{"overlay", "bridge", "go", "java", "launch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig04 output missing %q", want)
		}
	}
}

func TestFig05Shape(t *testing.T) {
	rep := Fig05()
	out := rep.String()
	if !strings.Contains(out, "function initiation") {
		t.Fatal("fig05 missing initiation stage")
	}
	if len(rep.Tables[0].Rows) != 6 {
		t.Fatalf("fig05 stage rows = %d", len(rep.Tables[0].Rows))
	}
}

func TestFig08Reductions(t *testing.T) {
	rep := Fig08()
	if len(rep.Tables) != 2 {
		t.Fatal("fig08 needs server and edge tables")
	}
	// Parse reductions out of the table cells: column 3 is "reduction".
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmtSscanfPct(cell, &v); err != nil {
			t.Fatalf("bad reduction cell %q: %v", cell, err)
		}
		return v
	}
	server := rep.Tables[0]
	v3 := parse(server.Rows[0][3])
	tf := parse(server.Rows[1][3])
	if v3 < 25 || v3 > 42 {
		t.Fatalf("server v3-app reduction = %v%%, paper 33.2%%", v3)
	}
	if tf < 17 || tf > 32 {
		t.Fatalf("server tf-api reduction = %v%%, paper 23.9%%", tf)
	}
	if v3 <= tf {
		t.Fatal("v3-app should benefit more than tf-api-app (paper ordering)")
	}
	edge := rep.Tables[1]
	ev3 := parse(edge.Rows[0][3])
	etf := parse(edge.Rows[1][3])
	if ev3 < 18 || ev3 > 36 {
		t.Fatalf("edge v3-app reduction = %v%%, paper 26.6%%", ev3)
	}
	if etf < 13 || etf > 30 {
		t.Fatalf("edge tf-api reduction = %v%%, paper 20.6%%", etf)
	}
	// Edge benefits less than server for the same app (10x exec).
	if ev3 >= v3 {
		t.Fatalf("edge v3 reduction %v%% should be below server %v%%", ev3, v3)
	}
}

func TestFig09Ratio(t *testing.T) {
	base := fig09Run(PolicyCold, 40)
	hotc := fig09Run(PolicyHotC, 40)
	steady := func(r faas.Result) bool { return r.Request.Round >= 6 }
	ratio := meanTotalMS(hotc, steady) / meanTotalMS(base, steady)
	// Paper: latency drops dramatically once the pool is populated.
	if ratio > 0.45 {
		t.Fatalf("steady-state HotC/default ratio = %.2f, want < 0.45", ratio)
	}
	// Early requests can not reuse.
	if hotc[0].Reused {
		t.Fatal("first request reused")
	}
	rep := Fig09(40)
	if len(rep.Tables) != 2 {
		t.Fatal("fig09 report incomplete")
	}
}

func TestFig10Improvement(t *testing.T) {
	rep := Fig10()
	if len(rep.Tables) != 3 {
		t.Fatal("fig10 needs three tables")
	}
	out := rep.String()
	if !strings.Contains(out, "ES+Markov") {
		t.Fatal("missing combined predictor column")
	}
}

func TestFig11Shape(t *testing.T) {
	rep := Fig11()
	if len(rep.Tables) != 2 {
		t.Fatal("fig11 needs two tables")
	}
	if len(rep.Tables[1].Rows) != 24 {
		t.Fatalf("hourly table rows = %d", len(rep.Tables[1].Rows))
	}
}

func TestFig12ParallelRatio(t *testing.T) {
	parallel := fig12PatternForTest()
	pbase := fig12Run(PolicyCold, parallel, 10)
	photc := fig12Run(PolicyHotC, parallel, 10)
	steady := func(r faas.Result) bool { return r.Request.Round >= 2 }
	ratio := meanTotalMS(photc, steady) / meanTotalMS(pbase, steady)
	// Paper: "The average latency with HotC is only 9% of the default
	// case". Require the same order of magnitude.
	if ratio > 0.25 {
		t.Fatalf("parallel HotC/default = %.3f, want < 0.25 (paper ~0.09)", ratio)
	}
	for _, r := range photc {
		if r.Err != nil {
			t.Fatalf("hotc parallel request failed: %v", r.Err)
		}
	}
}

func TestFig13Claims(t *testing.T) {
	rep := Fig13()
	out := rep.String()
	if !strings.Contains(out, "decreasing: 0 cold starts") {
		t.Fatalf("fig13 decreasing claim violated:\n%s", out)
	}
}

func TestFig14BurstProgression(t *testing.T) {
	rep := Fig14()
	if len(rep.Tables) != 3 {
		t.Fatal("fig14 needs three tables")
	}
	burst := rep.Tables[2]
	if len(burst.Rows) != 4 {
		t.Fatalf("burst rows = %d", len(burst.Rows))
	}
	parse := func(cell string) float64 {
		var v float64
		if _, err := fmtSscanfPct(cell, &v); err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	first := parse(burst.Rows[0][3])
	last := parse(burst.Rows[3][3])
	if last <= first {
		t.Fatalf("burst reductions should grow: first=%v%% last=%v%%", first, last)
	}
	if last < 35 {
		t.Fatalf("final burst reduction = %v%%, want substantial (paper up to 73%%)", last)
	}
}

func TestFig15Shape(t *testing.T) {
	rep := Fig15()
	if len(rep.Tables) != 2 {
		t.Fatal("fig15 needs two tables")
	}
	// Lifecycle table must show a CPU bump within 6..13s.
	found := false
	for _, row := range rep.Tables[1].Rows {
		if row[0] >= "6" && row[0] <= "9" && row[1] > "30" {
			found = true
		}
	}
	_ = found // shape asserted in the host package; here just structure
	if len(rep.Tables[1].Rows) < 15 {
		t.Fatalf("lifecycle samples = %d", len(rep.Tables[1].Rows))
	}
}

func TestAblationsRun(t *testing.T) {
	rep := Ablations()
	if len(rep.Tables) != 6 {
		t.Fatalf("ablations tables = %d", len(rep.Tables))
	}
	out := rep.String()
	for _, want := range []string{"relaxed keys", "hotc", "ES+markov", "contention"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations missing %q", want)
		}
	}
}

func TestRelatedWorkOrdering(t *testing.T) {
	rep := RelatedWork()
	if len(rep.Tables) != 2 {
		t.Fatal("relatedwork needs two tables")
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	qr := rep.Tables[0]
	vanilla := parse(qr.Rows[0][1])
	zygote := parse(qr.Rows[1][1])
	checkpoint := parse(qr.Rows[2][1])
	hotc := parse(qr.Rows[3][1])
	// Light function: every mechanism beats vanilla; reuse beats all.
	if !(hotc < zygote && hotc < checkpoint && zygote < vanilla && checkpoint < vanilla) {
		t.Fatalf("qr ordering wrong: vanilla=%v zygote=%v checkpoint=%v hotc=%v",
			vanilla, zygote, checkpoint, hotc)
	}
	v3 := rep.Tables[1]
	v3vanilla := parse(v3.Rows[0][1])
	v3checkpoint := parse(v3.Rows[2][1])
	v3hotc := parse(v3.Rows[3][1])
	// Heavy function: restore cost eats the checkpoint advantage, and
	// reuse still wins.
	if v3checkpoint < v3vanilla*0.9 {
		t.Fatalf("checkpoint should not be a big win for the model-heavy app: %v vs %v",
			v3checkpoint, v3vanilla)
	}
	if v3hotc >= v3vanilla {
		t.Fatal("reuse must beat vanilla on the heavy app")
	}
}

func TestPolicyShootout(t *testing.T) {
	rep := PolicyShootout()
	if len(rep.Tables) != 1 {
		t.Fatal("shootout needs one table")
	}
	if len(rep.Tables[0].Rows) != 5 {
		t.Fatalf("shootout rows = %d", len(rep.Tables[0].Rows))
	}
}

// fmtSscanfPct parses "12.3%" cells.
func fmtSscanfPct(cell string, v *float64) (int, error) {
	f, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(cell), "%"), 64)
	if err != nil {
		return 0, err
	}
	*v = f
	return 1, nil
}

// fig12PatternForTest mirrors Fig12's parallel pattern.
func fig12PatternForTest() trace.Parallel {
	return trace.Parallel{Threads: 10, Interval: 30 * time.Second, Rounds: 12}
}

func TestChaosResilience(t *testing.T) {
	burst := trace.Burst{Base: 4, Factor: 8, BurstRounds: []int{3, 6, 9}, Rounds: 12, Interval: 30 * time.Second}.Generate()

	// At 5% create-fail + 1% exec-crash + 1% corruption HotC completes
	// every request: the acceptance bar of the resilience work.
	out := chaosRun(PolicyHotC, chaosRates(0.05), burst)
	if out.errors != 0 {
		t.Fatalf("HotC surfaced %d errors at 5%% create-fail", out.errors)
	}
	if out.injected.Total() == 0 {
		t.Fatal("no faults injected; sweep exercises nothing")
	}
	if out.retries == 0 {
		t.Fatal("create faults injected but no retries recorded")
	}

	// Registry outage: reuse shields HotC while the cold baseline
	// depends on the broken create path; the breaker trips during the
	// window and closes after it.
	outage := faults.Config{
		Seed: 1717,
		Rules: []faults.Rule{{
			CreateFailRate: 0.05,
			Bursts:         []faults.Burst{{StartSec: 120, DurationSec: 60, Multiplier: 20}},
		}},
	}
	serial := trace.Serial{Interval: 2 * time.Second, Count: 150}.Generate()
	hot := chaosRun(PolicyHotC, outage, serial)
	cold := chaosRun(PolicyCold, outage, serial)
	if hot.errors != 0 {
		t.Fatalf("HotC surfaced %d errors during the outage", hot.errors)
	}
	if cold.errors <= hot.errors {
		t.Fatalf("outage should hurt cold-start-always (cold=%d, hotc=%d errors)", cold.errors, hot.errors)
	}
	if cold.trips == 0 {
		t.Fatal("a full outage must trip the cold baseline's breaker")
	}
	if cold.closes == 0 {
		t.Fatal("the breaker never closed after the outage window")
	}
}
