package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/faas"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// fig12Deploy registers one function per client thread, each with its
// own runtime configuration (distinct environment, rotating language
// images), matching Fig. 12(b)'s "each thread has its own runtime
// configuration".
func fig12Deploy(env *Env, threads int) []string {
	images := []struct {
		img  string
		lang workload.Language
	}{
		{"python:3.8", workload.Python},
		{"node:10", workload.Node},
		{"golang:1.12", workload.Go},
	}
	names := make([]string, threads)
	for i := 0; i < threads; i++ {
		pick := images[i%len(images)]
		name := fmt.Sprintf("qr-thread-%d", i)
		rt := config.Runtime{
			Image:   pick.img,
			Network: "nat",
			Env:     []string{fmt.Sprintf("THREAD=%d", i)},
		}
		if err := env.Deploy(name, rt, workload.QRApp(pick.lang)); err != nil {
			panic(err)
		}
		names[i] = name
	}
	return names
}

// fig12Run replays a pattern under a policy with per-class functions.
func fig12Run(kind PolicyKind, pattern trace.Pattern, threads int) []faas.Result {
	env := NewEnv(kind, EnvOptions{Seed: 1212, PrePull: true})
	defer env.Close()
	names := fig12Deploy(env, threads)
	results, err := env.Replay(pattern.Generate(), func(c int) string { return names[c%threads] })
	if err != nil {
		panic(err)
	}
	return results
}

// Fig12 reproduces the serial and parallel request studies: (a) a
// single client thread sending the same request every 30 seconds —
// first request cold, all following requests reuse under HotC; (b) ten
// client threads, each with its own runtime configuration — the
// average HotC latency falls to a small fraction of the default
// (paper: ~9%).
func Fig12() *Report {
	r := NewReport("fig12", "serial and parallel request latency")

	// (a) serial.
	serial := trace.Serial{Interval: 30 * time.Second, Count: 15}
	base := fig12Run(PolicyCold, serial, 1)
	hotc := fig12Run(PolicyHotC, serial, 1)
	ta := r.NewTable("Fig. 12(a) serial requests every 30s",
		"request", "w/o HotC (ms)", "w/ HotC (ms)", "reused")
	for i := range base {
		reused := "no"
		if hotc[i].Reused {
			reused = "yes"
		}
		ta.AddRow(fmt.Sprintf("%d", i+1),
			ms(base[i].Timestamps.Total()), ms(hotc[i].Timestamps.Total()), reused)
	}
	steadyA := func(res faas.Result) bool { return res.Request.Round > 0 }
	r.Notef("serial steady-state: HotC %sms vs default %sms",
		msF(meanTotalMS(hotc, steadyA)), msF(meanTotalMS(base, steadyA)))

	// (b) parallel, 10 threads with distinct configurations.
	parallel := trace.Parallel{Threads: 10, Interval: 30 * time.Second, Rounds: 12}
	pbase := fig12Run(PolicyCold, parallel, 10)
	photc := fig12Run(PolicyHotC, parallel, 10)
	tb := r.NewTable("Fig. 12(b) parallel requests, 10 threads with own configurations",
		"round", "w/o HotC mean (ms)", "w/ HotC mean (ms)")
	for round := 0; round < parallel.Rounds; round++ {
		keep := func(res faas.Result) bool { return res.Request.Round == round }
		tb.AddRow(fmt.Sprintf("%d", round+1),
			msF(meanTotalMS(pbase, keep)), msF(meanTotalMS(photc, keep)))
	}
	steadyB := func(res faas.Result) bool { return res.Request.Round >= 2 }
	ratio := meanTotalMS(photc, steadyB) / meanTotalMS(pbase, steadyB)
	r.Notef("parallel steady-state HotC latency is %s of the default (paper: ~9%%)", pct(ratio))
	return r
}
