package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/faas"
	"hotc/internal/faults"
	"hotc/internal/metrics"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// chaosExecCrashRate and chaosCorruptRate are held constant across the
// sweep so the create-fail axis isolates one failure mode.
const (
	chaosExecCrashRate = 0.01
	chaosCorruptRate   = 0.01
)

// chaosOutcome aggregates one chaos run.
type chaosOutcome struct {
	requests    int
	errors      int
	retries     int
	fallbacks   int
	quarantined int
	trips       int
	closes      int
	degraded    int
	meanMS      float64
	p99MS       float64
	injected    faults.Stats
}

// chaosRun replays a schedule under the given policy and fault config
// with the chaos-ready gateway tuning.
func chaosRun(kind PolicyKind, cfg faults.Config, schedule []trace.Request) chaosOutcome {
	env := NewEnv(kind, EnvOptions{Seed: 1717, PrePull: true, Faults: &cfg})
	defer env.Close()

	gw := env.Gateway
	gw.MaxAcquireRetries = 4
	gw.RetryBackoff = 50 * time.Millisecond
	gw.BackoffFactor = 2
	gw.BackoffMax = 2 * time.Second
	gw.ExecRetries = 2
	gw.BreakerThreshold = 5
	gw.BreakerOpenFor = 30 * time.Second

	app := workload.QRApp(workload.Python)
	if err := env.Deploy("qr", config.Runtime{Image: "python:3.8", Network: "nat"}, app); err != nil {
		panic(err)
	}
	results, err := env.Replay(schedule, singleClass("qr"))
	if err != nil {
		panic(err)
	}

	var out chaosOutcome
	var lat metrics.Series
	for _, r := range results {
		out.requests++
		if r.Err != nil {
			out.errors++
			continue
		}
		lat.AddDuration(r.Timestamps.Total())
	}
	out.meanMS = lat.Mean()
	out.p99MS = lat.P99()

	c := gw.ResilienceCounters()
	out.retries = gw.Retries()
	out.fallbacks = c.Get(faas.CounterExecFallbacks)
	out.trips = c.Get(faas.CounterBreakerTrips)
	out.closes = c.Get(faas.CounterBreakerCloses)
	out.degraded = c.Get(faas.CounterDegradedRequests)
	out.quarantined = c.Get(faas.CounterQuarantines)
	if env.HotC != nil {
		// For a pooled policy the authoritative count is the pool's:
		// it covers both gateway discards and health-check catches.
		out.quarantined = env.HotC.Pool().Stats().Quarantined
	}
	out.injected = env.Faults.Stats()
	return out
}

// chaosRates builds the steady-state fault config for a create-fail
// rate.
func chaosRates(createFailRate float64) faults.Config {
	return faults.Config{
		Seed: 1717,
		Rules: []faults.Rule{{
			CreateFailRate: createFailRate,
			ExecCrashRate:  chaosExecCrashRate,
			CorruptRate:    chaosCorruptRate,
		}},
	}
}

// Chaos sweeps injected fault rates under HotC and the cold baseline,
// reporting success rate, retry/fallback/quarantine activity and tail
// latency, then simulates a full registry outage to exercise the
// circuit breaker. The headline: no client-visible error escapes at
// any swept rate — under sustained faults HotC degrades towards
// cold-start-always latency rather than failing requests, and reuse
// additionally shields it from create-path outages that hammer the
// cold baseline.
func Chaos() *Report {
	r := NewReport("chaos", "fault injection: resilience under failing creates, crashing execs and corrupted runtimes")

	// (1) Rate sweep on a bursty workload, so both policies must keep
	// creating containers (a purely serial load would let HotC dodge
	// the create path entirely after the first request).
	burst := trace.Burst{Base: 4, Factor: 8, BurstRounds: []int{3, 6, 9}, Rounds: 12, Interval: 30 * time.Second}.Generate()
	t := r.NewTable(
		fmt.Sprintf("chaos sweep (bursty workload, %d requests; exec-crash %.0f%%, corruption %.0f%% throughout)",
			len(burst), 100*chaosExecCrashRate, 100*chaosCorruptRate),
		"policy", "create-fail", "requests", "errors", "success",
		"retries", "fallbacks", "quarantined", "mean(ms)", "p99(ms)")

	rates := []float64{0, 0.02, 0.05, 0.10}
	var hotcAt5, coldAt5 chaosOutcome
	for _, kind := range []PolicyKind{PolicyHotC, PolicyCold} {
		for _, rate := range rates {
			out := chaosRun(kind, chaosRates(rate), burst)
			success := 1.0
			if out.requests > 0 {
				success = float64(out.requests-out.errors) / float64(out.requests)
			}
			t.AddRow(string(kind), pct(rate),
				fmt.Sprintf("%d", out.requests), fmt.Sprintf("%d", out.errors), pct(success),
				fmt.Sprintf("%d", out.retries), fmt.Sprintf("%d", out.fallbacks),
				fmt.Sprintf("%d", out.quarantined), msF(out.meanMS), msF(out.p99MS))
			if rate == 0.05 {
				if kind == PolicyHotC {
					hotcAt5 = out
				} else {
					coldAt5 = out
				}
			}
		}
	}

	// (2) Registry outage: only the create path breaks — a 5% base
	// create-fail rate spikes to 100% for a minute (a burst multiplies
	// every rate in its rule, so the outage rule carries no exec or
	// corruption faults). Requests needing a create exhaust their
	// retries; the breaker trips and the gateway degrades, then
	// recovers once the window passes. HotC's warm pool never touches
	// the broken create path and rides the outage out.
	outage := faults.Config{
		Seed: 1717,
		Rules: []faults.Rule{{
			CreateFailRate: 0.05,
			Bursts:         []faults.Burst{{StartSec: 120, DurationSec: 60, Multiplier: 20}},
		}},
	}
	serial := trace.Serial{Interval: 2 * time.Second, Count: 150}.Generate()
	to := r.NewTable("registry outage (create-fail 100% from t=120s to t=180s, serial 150 req @2s)",
		"policy", "requests", "errors", "success", "retries",
		"breaker-trips", "breaker-closes", "degraded", "p99(ms)")
	var hotcOut, coldOut chaosOutcome
	for _, kind := range []PolicyKind{PolicyHotC, PolicyCold} {
		out := chaosRun(kind, outage, serial)
		if kind == PolicyHotC {
			hotcOut = out
		} else {
			coldOut = out
		}
		success := 1.0
		if out.requests > 0 {
			success = float64(out.requests-out.errors) / float64(out.requests)
		}
		to.AddRow(string(kind), fmt.Sprintf("%d", out.requests), fmt.Sprintf("%d", out.errors),
			pct(success), fmt.Sprintf("%d", out.retries),
			fmt.Sprintf("%d", out.trips), fmt.Sprintf("%d", out.closes),
			fmt.Sprintf("%d", out.degraded), msF(out.p99MS))
	}

	r.Notef("at 5%% create-fail + %.0f%% exec-crash HotC completes %d/%d requests (%d injected faults absorbed by %d retries, %d fallbacks, %d quarantines)",
		100*chaosExecCrashRate, hotcAt5.requests-hotcAt5.errors, hotcAt5.requests,
		hotcAt5.injected.Total(), hotcAt5.retries, hotcAt5.fallbacks, hotcAt5.quarantined)
	r.Notef("degradation, not failure: HotC p99 under 5%% faults is %sms vs the cold baseline's %sms",
		msF(hotcAt5.p99MS), msF(coldAt5.p99MS))
	r.Notef("outage: runtime reuse shields HotC (%d errors) where cold-start-always depends on the broken create path (%d errors); the breaker tripped %d time(s) and closed %d time(s) after the window",
		hotcOut.errors, coldOut.errors, coldOut.trips, coldOut.closes)
	return r
}
