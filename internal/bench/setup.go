package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/core"
	"hotc/internal/costmodel"
	"hotc/internal/faas"
	"hotc/internal/faults"
	"hotc/internal/host"
	"hotc/internal/image"
	"hotc/internal/policy"
	"hotc/internal/pool"
	"hotc/internal/rng"
	"hotc/internal/simclock"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// PolicyKind selects the runtime-management strategy under test.
type PolicyKind string

// The policies every experiment can run under.
const (
	PolicyCold      PolicyKind = "default"
	PolicyHotC      PolicyKind = "hotc"
	PolicyKeepAlive PolicyKind = "keepalive"
	PolicyWarmup    PolicyKind = "warmup"
	PolicyHistogram PolicyKind = "histogram"
)

// Env is a fully wired simulation environment: scheduler, engine,
// gateway, provider and host monitor on one hardware profile.
type Env struct {
	Sched    *simclock.Scheduler
	Engine   *container.Engine
	Registry *image.Registry
	Gateway  *faas.Gateway
	Host     *host.Host
	HotC     *core.HotC        // non-nil only for PolicyHotC
	Faults   *faults.Injector  // non-nil only when EnvOptions.Faults is set
	Provider faas.Provider
}

// EnvOptions tune environment construction.
type EnvOptions struct {
	// Profile is the hardware profile (default: server).
	Profile costmodel.Profile
	// Seed drives latency jitter; 0 disables jitter for exact stage
	// accounting.
	Seed int64
	// KeepAliveWindow configures PolicyKeepAlive (default 15m).
	KeepAliveWindow time.Duration
	// WarmupPeriod configures PolicyWarmup (default 5m).
	WarmupPeriod time.Duration
	// HotC options (control interval etc.).
	Core core.Options
	// PrePull warms the image layer cache for all catalog images,
	// matching the paper's testbed where "the images were stored
	// locally" (§V.A).
	PrePull bool
	// Constants overrides the cost-model constants (nil = defaults);
	// used by ablations such as the contention study.
	Constants *costmodel.Constants
	// Faults attaches a deterministic fault injector to the engine and
	// a health check to the runtime pool (chaos experiments).
	Faults *faults.Config
}

// NewEnv builds an environment running the given policy.
func NewEnv(kind PolicyKind, opts EnvOptions) *Env {
	prof := opts.Profile
	if prof.Name == "" {
		prof = costmodel.Server()
	}
	sched := simclock.New()
	reg := image.StandardCatalog()
	cache := image.NewCache()
	var jit *rng.Source
	if opts.Seed != 0 {
		jit = rng.New(opts.Seed)
	}
	cm := costmodel.New(prof)
	if opts.Constants != nil {
		cm = costmodel.NewWith(*opts.Constants, prof)
	}
	eng := container.NewEngine(sched, cm, reg, cache, jit)
	if opts.PrePull {
		for _, ref := range reg.Refs() {
			im, err := reg.Lookup(ref)
			if err == nil {
				cache.Admit(im)
			}
		}
	}

	env := &Env{Sched: sched, Engine: eng, Registry: reg, Host: host.New(eng)}

	var health func(*container.Container) error
	if opts.Faults != nil {
		inj, err := faults.New(*opts.Faults, sched.Now)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		inj.Attach(eng)
		env.Faults = inj
		health = inj.HealthCheck
	}

	var p *pool.Pool
	switch kind {
	case PolicyCold:
		env.Provider = policy.NewNoReuse(eng)
	case PolicyHotC:
		coreOpts := opts.Core
		coreOpts.Pool.MemUsedPct = env.Host.UsedMemPct
		coreOpts.Pool.HealthCheck = health
		h := core.New(eng, coreOpts)
		h.Start()
		env.HotC = h
		env.Provider = h
	case PolicyKeepAlive:
		p = pool.New(eng, pool.Options{MemUsedPct: env.Host.UsedMemPct, HealthCheck: health})
		env.Provider = policy.NewFixedKeepAlive(p, opts.KeepAliveWindow)
	case PolicyWarmup:
		p = pool.New(eng, pool.Options{MemUsedPct: env.Host.UsedMemPct, HealthCheck: health})
		env.Provider = policy.NewPeriodicWarmup(p, opts.WarmupPeriod, opts.KeepAliveWindow)
	case PolicyHistogram:
		p = pool.New(eng, pool.Options{MemUsedPct: env.Host.UsedMemPct, HealthCheck: health})
		env.Provider = policy.NewHistogram(p)
	default:
		panic(fmt.Sprintf("bench: unknown policy %q", kind))
	}
	env.Gateway = faas.NewGateway(eng, env.Provider)
	env.instrument(p)
	return env
}

// Deploy registers a function at the gateway (and with HotC's
// controller when running HotC).
func (e *Env) Deploy(name string, rt config.Runtime, app workload.App) error {
	fn := faas.Function{Name: name, Runtime: rt, App: app}
	resolver := faas.ResolverFunc(func(rt config.Runtime) (container.Spec, error) {
		return container.ResolveSpec(rt, e.Registry)
	})
	if err := e.Gateway.Deploy(fn, resolver); err != nil {
		return err
	}
	spec, _ := e.Gateway.Spec(name)
	if e.HotC != nil {
		return e.HotC.Register(spec, app)
	}
	if w, ok := e.Provider.(*policy.PeriodicWarmup); ok {
		w.StartPinger(spec, app)
	}
	return nil
}

// Replay runs a request schedule against the gateway.
func (e *Env) Replay(schedule []trace.Request, classFn func(int) string) ([]faas.Result, error) {
	return faas.Run(e.Gateway, schedule, classFn)
}

// Close stops background machinery (HotC's controller) so the
// scheduler can drain.
func (e *Env) Close() {
	if e.HotC != nil {
		e.HotC.Stop()
	}
	if w, ok := e.Provider.(*policy.PeriodicWarmup); ok {
		w.StopPingers()
	}
}

// meanTotalMS computes the mean end-to-end latency in milliseconds of
// the successful results, optionally filtered.
func meanTotalMS(results []faas.Result, keep func(faas.Result) bool) float64 {
	sum, n := 0.0, 0
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if keep != nil && !keep(r) {
			continue
		}
		sum += float64(r.Timestamps.Total()) / float64(time.Millisecond)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// singleClass maps every request class to one function name.
func singleClass(name string) func(int) string {
	return func(int) string { return name }
}
