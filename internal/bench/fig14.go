package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/core"
	"hotc/internal/faas"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// fig14Run replays a pattern with burst-friendly controller tuning:
// the control interval matches the round interval and scale-down is
// slow (6% per tick) so burst capacity is retained across bursts.
func fig14Run(kind PolicyKind, pattern trace.Pattern) []faas.Result {
	env := NewEnv(kind, EnvOptions{
		Seed:    1414,
		PrePull: true,
		Core: core.Options{
			Interval:      30 * time.Second,
			ScaleDownFrac: 0.06,
			// Provisioning headroom for burst-prone traffic: without
			// it the controller would retire part of the previous wave
			// just before the next, larger one arrives.
			Headroom: 0.25,
		},
	})
	defer env.Close()
	if err := env.Deploy("qr", config.Runtime{Image: "python:3.8", Network: "nat"},
		workload.QRApp(workload.Python)); err != nil {
		panic(err)
	}
	results, err := env.Replay(pattern.Generate(), singleClass("qr"))
	if err != nil {
		panic(err)
	}
	return results
}

// Fig14 reproduces the exponential flows and the request bursts:
//
//   - 14(a) exponential increasing (2^i requests at round i): at least
//     half of each round's requests reuse the previous wave's runtimes;
//     exponential decreasing: everything after the first round is warm.
//   - 14(b) bursts: eight requests per round with 10x bursts at rounds
//     4/8/12/16 — the first burst improves only ~9% (just the steady
//     containers are warm), later bursts up to ~73% as the retained
//     burst capacity and the prediction absorb the volatility.
func Fig14() *Report {
	r := NewReport("fig14", "exponential request flows and request bursts")

	expInc := trace.Exponential{Rounds: 7, Interval: 30 * time.Second}
	baseInc := fig14Run(PolicyCold, expInc)
	hotcInc := fig14Run(PolicyHotC, expInc)
	roundTable(r, "Fig. 14(a) exponential increasing (2^i requests at round i)",
		expInc.Rounds, baseInc, hotcInc)
	for round := 1; round < expInc.Rounds; round++ {
		reused, n := 0, 0
		for _, res := range hotcInc {
			if res.Request.Round == round {
				n++
				if res.Reused {
					reused++
				}
			}
		}
		if round == expInc.Rounds-1 {
			r.Notef("exponential increasing, final round: %d/%d requests reused previous-wave runtimes (paper: 'at least half of the requests ... directly use the existing instances')", reused, n)
		}
	}

	expDec := trace.Exponential{Rounds: 7, Interval: 30 * time.Second, Decreasing: true}
	baseDec := fig14Run(PolicyCold, expDec)
	hotcDec := fig14Run(PolicyHotC, expDec)
	roundTable(r, "Fig. 14(a') exponential decreasing", expDec.Rounds, baseDec, hotcDec)

	burst := trace.Burst{Base: 8, Factor: 10, BurstRounds: []int{4, 8, 12, 16}, Rounds: 18, Interval: 30 * time.Second}
	baseBurst := fig14Run(PolicyCold, burst)
	hotcBurst := fig14Run(PolicyHotC, burst)
	t := r.NewTable("Fig. 14(b) request bursts (8/round, 10x at rounds 5, 9, 13, 17)",
		"burst #", "w/o HotC mean (ms)", "w/ HotC mean (ms)", "reduction")
	for i, round := range burst.BurstRounds {
		keep := func(res faas.Result) bool { return res.Request.Round == round }
		b := meanTotalMS(baseBurst, keep)
		h := meanTotalMS(hotcBurst, keep)
		t.AddRow(fmt.Sprintf("%d", i+1), msF(b), msF(h), pct(1-h/b))
	}
	first := func(res faas.Result) bool { return res.Request.Round == burst.BurstRounds[0] }
	last := func(res faas.Result) bool { return res.Request.Round == burst.BurstRounds[len(burst.BurstRounds)-1] }
	firstRed := 1 - meanTotalMS(hotcBurst, first)/meanTotalMS(baseBurst, first)
	lastRed := 1 - meanTotalMS(hotcBurst, last)/meanTotalMS(baseBurst, last)
	r.Notef("first burst reduction %s (paper: ~9%%); final burst reduction %s (paper: up to 73%%)",
		pct(firstRed), pct(lastRed))
	return r
}
