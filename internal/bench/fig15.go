package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/host"
	"hotc/internal/workload"
)

// Fig15 reproduces the overhead analysis: (a) CPU and memory usage as
// a function of the number of live containers — the per-container cost
// is negligible (<1% CPU for ten containers, ~0.7 MB each); (b) the
// resource timeline of a containerised Cassandra database started at
// t=6s and stopped at t=13s while its container stays live — the
// application, not the container, consumes the resources, and the OS
// reclaims them promptly.
func Fig15() *Report {
	r := NewReport("fig15", "resource overhead of live containers")

	// (a) resources vs number of live containers.
	ta := r.NewTable("Fig. 15(a) host resources vs live containers (server)",
		"live containers", "CPU (%)", "memory (MB)", "mem delta (MB)")
	env := engineOnly(costmodel.Server(), true)
	h := env.Host
	base := h.UsedMemMB()
	spec := mustSpec(env, config.Runtime{Image: "alpine:3.9"})
	recordAt := map[int]bool{0: true, 1: true, 5: true, 10: true, 50: true, 100: true, 500: true}
	created := 0
	record := func() {
		ta.AddRow(fmt.Sprintf("%d", created), f2(h.UsedCPUPct()), f2(h.UsedMemMB()), f2(h.UsedMemMB()-base))
	}
	record()
	for created < 500 {
		env.Engine.Create(spec, func(c *container.Container, err error) {
			if err != nil {
				panic(err)
			}
		})
		if err := env.Sched.Run(); err != nil {
			panic(err)
		}
		created++
		if recordAt[created] {
			record()
		}
	}
	ten := costmodel.Defaults()
	r.Notef("ten live containers: +%.2f%% CPU (<1%%) and +%.1f MB (~0.7 MB each) — matching Fig. 15(a)",
		10*ten.IdleContainerCPUPct, 10*ten.IdleContainerMemMB)

	// (b) Cassandra lifecycle.
	env2 := engineOnly(costmodel.Server(), true)
	mon := host.NewMonitor(env2.Host, env2.Sched)
	mon.Start(time.Second)
	cassSpec := mustSpec(env2, config.Runtime{Image: "cassandra:3.11"})
	app := workload.Cassandra()
	var cass *container.Container
	env2.Sched.After(1*time.Second, func() {
		env2.Engine.Create(cassSpec, func(c *container.Container, err error) {
			if err != nil {
				panic(err)
			}
			cass = c
		})
	})
	// The paper starts the database at the 6th second and stops it at
	// the 13th; the container stays live afterwards.
	env2.Sched.At(6*time.Second, func() {
		if cass == nil {
			panic("bench: cassandra container not ready by t=6s")
		}
		env2.Engine.Exec(cass, app, func(time.Duration, error) {})
	})
	if err := env2.Sched.RunUntil(20 * time.Second); err != nil {
		panic(err)
	}
	mon.Stop()

	tb := r.NewTable("Fig. 15(b) Cassandra lifecycle on one live container",
		"t (s)", "CPU (%)", "memory (MB)")
	for i := 0; i < mon.CPU.Len(); i++ {
		p := mon.CPU.At(i)
		m := mon.Mem.At(i)
		tb.AddRow(fmt.Sprintf("%d", int(p.T/time.Second)), f2(p.V), f2(m.V))
	}
	r.Notef("the execution window (≈6s..13s) dominates resource usage; after the app stops the OS reclaims memory while the container stays live at ~%.1f MB",
		costmodel.Defaults().IdleContainerMemMB)
	return r
}
