package bench

import (
	"fmt"
	"time"

	"hotc/internal/cluster"
	"hotc/internal/config"
	"hotc/internal/core"
	"hotc/internal/metrics"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// ClusterStudy evaluates the §VII multi-host extension: routing
// policies over a 4-node cluster under (a) low-rate serial traffic
// where reuse is everything, (b) skewed popular-function traffic where
// both reuse and load balance matter, and (c) a node failure mid-run.
func ClusterStudy() *Report {
	r := NewReport("cluster", "multi-host HotC: routing policies and failure handling (§VII)")

	policies := []cluster.Routing{cluster.RoundRobin, cluster.LeastLoaded, cluster.ReuseAffinity}

	// (a) serial traffic.
	ta := r.NewTable("Serial traffic (1 request/30s, 40 requests, 4 nodes)",
		"routing", "reuse rate", "mean latency (ms)", "load imbalance")
	for _, p := range policies {
		c := newStudyCluster(p)
		results, err := c.Run(trace.Serial{Interval: 30 * time.Second, Count: 40}.Generate(),
			func(int) string { return "qr" })
		if err != nil {
			panic(err)
		}
		ta.AddRow(p.String(), pct(cluster.ReuseRate(results)),
			msF(clusterMeanMS(results)), f2(c.LoadImbalance()))
		c.Close()
	}
	r.Notef("affinity routing keeps revisits on the node that holds the warm runtime; round-robin scatters them")

	// (b) skew: one hot function (80% of traffic) and three cold ones.
	tb := r.NewTable("Skewed concurrent traffic (hot function ~83% of requests, 4 nodes)",
		"routing", "reuse rate", "mean latency (ms)", "load imbalance")
	for _, p := range policies {
		c := newStudyCluster(p)
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("coldfn-%d", i)
			rt := config.Runtime{Image: "node:10", Env: []string{fmt.Sprintf("F=%d", i)}}
			if err := c.Deploy(name, rt, workload.QRApp(workload.Node)); err != nil {
				panic(err)
			}
		}
		// Concurrent rounds of a popular function, plus *rare* niche
		// functions (one request every third round): the niche
		// revisits are where placement matters — scatter them and
		// every revisit is a cold start on a fresh node; keep them
		// affine and only the first is cold.
		var schedule []trace.Request
		for round := 0; round < 24; round++ {
			at := time.Duration(round) * 30 * time.Second
			for i := 0; i < 10; i++ {
				schedule = append(schedule, trace.Request{At: at, Class: 0, Round: round})
			}
			if round%3 == 0 {
				schedule = append(schedule, trace.Request{At: at, Class: 1 + (round/3)%3, Round: round})
			}
		}
		results, err := c.Run(schedule, func(cl int) string {
			if cl == 0 {
				return "qr"
			}
			return fmt.Sprintf("coldfn-%d", cl-1)
		})
		if err != nil {
			panic(err)
		}
		tb.AddRow(p.String(), pct(cluster.ReuseRate(results)),
			msF(clusterMeanMS(results)), f2(c.LoadImbalance()))
		c.Close()
	}

	// (c) failure: kill a node mid-run under affinity routing.
	c := newStudyCluster(cluster.ReuseAffinity)
	sched := trace.Serial{Interval: 10 * time.Second, Count: 30}.Generate()
	half := len(sched) / 2
	c.Scheduler().At(sched[half].At, func() { c.FailNode(0) })
	results, err := c.Run(sched, func(int) string { return "qr" })
	if err != nil {
		panic(err)
	}
	failedServed := 0
	errs := 0
	for i, res := range results {
		if res.Err != nil {
			errs++
		}
		if i >= half && res.Node == "node-0" {
			failedServed++
		}
	}
	tc := r.NewTable("Node failure mid-run (affinity routing)", "metric", "value")
	tc.AddRow("requests", fmt.Sprintf("%d", len(results)))
	tc.AddRow("errors", fmt.Sprintf("%d", errs))
	tc.AddRow("post-failure requests on failed node", fmt.Sprintf("%d", failedServed))
	tc.AddRow("reuse rate", pct(cluster.ReuseRate(results)))
	c.Close()
	r.Notef("after the failure the router re-homes traffic; one cold start re-warms a surviving node and reuse resumes")
	return r
}

func newStudyCluster(p cluster.Routing) *cluster.Cluster {
	c := cluster.New(cluster.Options{
		Nodes:   4,
		Routing: p,
		Seed:    77,
		PrePull: true,
		Core:    core.Options{Interval: 30 * time.Second},
	})
	if err := c.Deploy("qr", config.Runtime{Image: "python:3.8"}, workload.QRApp(workload.Python)); err != nil {
		panic(err)
	}
	return c
}

func clusterMeanMS(results []cluster.Result) float64 {
	var s metrics.Series
	for _, r := range results {
		if r.Err == nil {
			s.AddDuration(r.Timestamps.Total())
		}
	}
	return s.Mean()
}
