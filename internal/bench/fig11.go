package bench

import (
	"fmt"
	"time"

	"hotc/internal/trace"
)

// Fig11 reproduces the campus YouTube request trace: the diurnal
// envelope with the three representative patterns the paper calls out
// — the T710 burst from ~20 to ~300 requests, the afternoon decline
// from T800 to T1200, and the evening rise from T1200 to T1400.
func Fig11() *Report {
	r := NewReport("fig11", "campus YouTube request trace (synthetic reconstruction)")

	t := r.NewTable("Fig. 11 envelope at representative minutes",
		"minute of day", "requests/min (envelope)")
	for _, m := range []int{0, 200, 400, 600, 700, 705, 710, 800, 1000, 1200, 1300, 1400, 1439} {
		t.AddRow(fmt.Sprintf("T%d", m), f2(trace.CampusEnvelope(m)))
	}

	// A generated day, aggregated hourly.
	day := trace.Campus{Seed: 11, Scale: 1}.Generate()
	counts := trace.CountPerRound(day)
	th := r.NewTable("Fig. 11 generated trace, hourly request totals",
		"hour", "requests")
	for h := 0; h < 24; h++ {
		total := 0.0
		for m := h * 60; m < (h+1)*60 && m < len(counts); m++ {
			total += counts[m]
		}
		th.AddRow(fmt.Sprintf("%02d:00", h), fmt.Sprintf("%.0f", total))
	}

	burstRatio := trace.CampusEnvelope(710) / trace.CampusEnvelope(700)
	r.Notef("burst at T710: %.1fx the pre-burst rate (paper: 20 -> 300 requests)", burstRatio)
	r.Notef("decline T800->T1200: %.0f -> %.0f requests/min; evening rise T1200->T1400: %.0f -> %.0f",
		trace.CampusEnvelope(800), trace.CampusEnvelope(1199),
		trace.CampusEnvelope(1200), trace.CampusEnvelope(1400))
	r.Notef("trace length %v, %d total requests", 24*time.Hour, len(day))
	return r
}
