package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/core"
	"hotc/internal/costmodel"
	"hotc/internal/faas"
	"hotc/internal/metrics"
	"hotc/internal/pool"
	"hotc/internal/predictor"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// Ablations runs the design-choice studies DESIGN.md calls out beyond
// the paper's own figures: predictor composition, keep-alive window
// length versus HotC, pool capacity, and relaxed-key matching.
func Ablations() *Report {
	r := NewReport("ablations", "design-choice ablation studies")
	ablatePredictors(r)
	ablateKeepAlive(r)
	ablatePoolCap(r)
	ablateRelaxed(r)
	ablateContention(r)
	ablateEviction(r)
	return r
}

// ablateEviction compares the paper's oldest-first forced eviction
// against LRU under a tight pool cap with one hot function and a churn
// of rarely-revisited ones: oldest-first repeatedly kills the hot
// (oldest) runtime, LRU spares it.
func ablateEviction(r *Report) {
	t := r.NewTable("Ablation: forced-eviction victim order (pool cap 4, 1 hot + 6 churn functions)",
		"eviction", "hot-function cold starts", "hot-function mean (ms)", "evictions")
	for _, ev := range []pool.EvictionPolicy{pool.EvictOldest, pool.EvictLRU} {
		env := NewEnv(PolicyHotC, EnvOptions{
			Seed:    24,
			PrePull: true,
			Core: core.Options{
				Interval: time.Hour, // effectively static: isolate the eviction policy
				Pool:     pool.Options{MaxLive: 4, Eviction: ev},
			},
		})
		hot := workload.QRApp(workload.Python)
		if err := env.Deploy("hot", config.Runtime{Image: "python:3.8", Env: []string{"ROLE=hot"}}, hot); err != nil {
			panic(err)
		}
		churnNames := make([]string, 6)
		for i := range churnNames {
			churnNames[i] = fmt.Sprintf("churn-%d", i)
			rt := config.Runtime{Image: "node:10", Env: []string{fmt.Sprintf("ROLE=churn%d", i)}}
			if err := env.Deploy(churnNames[i], rt, workload.QRApp(workload.Node)); err != nil {
				panic(err)
			}
		}
		// Hot requests every 20s; churn functions rotate on a 10s
		// offset so forced evictions happen while the hot runtime sits
		// idle (and is therefore a candidate victim).
		var schedule []trace.Request
		for i := 0; i < 40; i++ {
			at := time.Duration(i) * 20 * time.Second
			schedule = append(schedule, trace.Request{At: at, Class: 0, Round: i})
			schedule = append(schedule, trace.Request{At: at + 10*time.Second, Class: 1 + i%6, Round: i})
		}
		results, err := env.Replay(schedule, func(c int) string {
			if c == 0 {
				return "hot"
			}
			return churnNames[c-1]
		})
		if err != nil {
			panic(err)
		}
		hotCold := 0
		for _, res := range results {
			if res.Err == nil && res.Function == "hot" && !res.Reused {
				hotCold++
			}
		}
		hotMean := meanTotalMS(results, func(res faas.Result) bool { return res.Function == "hot" })
		t.AddRow(ev.String(), fmt.Sprintf("%d", hotCold), msF(hotMean),
			fmt.Sprintf("%d", env.HotC.Pool().Stats().Evictions))
		env.Close()
	}
	r.Notef("oldest-first keeps re-evicting the hot function's long-lived runtime; LRU spares what is actually being reused")
}

// ablateContention turns on the resource-contention model and measures
// the burst-round latency spike the paper attributes to "network
// congestion and resource competition" (§V.D). The contention knee is
// set so steady rounds run uncontended while the 10x burst saturates
// the host.
func ablateContention(r *Report) {
	t := r.NewTable("Ablation: resource contention under a 10x burst (HotC)",
		"contention model", "steady-round mean (ms)", "burst-round mean (ms)", "burst p-max (ms)")
	pattern := trace.Burst{Base: 4, Factor: 10, BurstRounds: []int{6}, Rounds: 10, Interval: 30 * time.Second}
	for _, enabled := range []bool{false, true} {
		consts := coreConstants()
		if enabled {
			// The QR app uses ~5% CPU per request; 40 concurrent
			// bursts demand ~200%, past a 120% knee.
			consts.ContentionKneePct = 120
		}
		env := NewEnv(PolicyHotC, EnvOptions{
			Seed:      23,
			PrePull:   true,
			Constants: &consts,
			Core:      core.Options{Interval: 30 * time.Second},
		})
		if err := env.Deploy("qr", config.Runtime{Image: "python:3.8", Network: "nat"},
			workload.QRApp(workload.Python)); err != nil {
			panic(err)
		}
		results, err := env.Replay(pattern.Generate(), singleClass("qr"))
		if err != nil {
			panic(err)
		}
		var steady, burst metrics.Series
		for _, res := range results {
			if res.Err != nil {
				continue
			}
			if res.Request.Round == 6 {
				burst.AddDuration(res.Timestamps.Total())
			} else if res.Request.Round > 1 {
				steady.AddDuration(res.Timestamps.Total())
			}
		}
		label := "off"
		if enabled {
			label = "on (knee 120%)"
		}
		t.AddRow(label, msF(steady.Mean()), msF(burst.Mean()), msF(burst.Max()))
		env.Close()
	}
	r.Notef("with contention on, the burst round spikes while steady rounds are unaffected — the paper's §V.D observation")
}

func coreConstants() costmodel.Constants { return costmodel.Defaults() }

// ablatePredictors scores each predictor on the Fig. 10 demand series
// and on a campus-trace demand series.
func ablatePredictors(r *Report) {
	mk := map[string]func() predictor.Predictor{
		"naive(last value)": func() predictor.Predictor { return predictor.NewNaive() },
		"seasonal(20)":      func() predictor.Predictor { return predictor.NewSeasonal(20) },
		"ES(α=0.8)":         func() predictor.Predictor { return predictor.NewES(0.8) },
		"markov(n=8)":       func() predictor.Predictor { return predictor.NewMarkov(8) },
		"ES+markov (HotC)":  func() predictor.Predictor { return predictor.Default() },
	}
	order := []string{"naive(last value)", "seasonal(20)", "ES(α=0.8)", "markov(n=8)", "ES+markov (HotC)"}

	fig10 := fig10Series()
	campus := trace.CountPerRound(trace.Campus{Seed: 5, Scale: 10, Minutes: 600}.Generate())

	t := r.NewTable("Ablation: predictor composition (MAE, one-step-ahead)",
		"predictor", "fig10 series", "campus demand")
	for _, name := range order {
		p1 := predictor.Backtest(mk[name](), fig10)
		p2 := predictor.Backtest(mk[name](), campus)
		t.AddRow(name,
			f2(metrics.MeanAbsError(p1[5:], fig10[5:])),
			f2(metrics.MeanAbsError(p2[5:], campus[5:])))
	}
	r.Notef("the combination tracks trends (ES) while absorbing volatility (Markov), as §IV.C argues")
}

// liveSampler samples the engine's live-container count every interval
// during a replay; it reports the time-averaged pool size (the
// resource cost of a policy).
type liveSampler struct {
	series metrics.TimeSeries
	stop   func()
}

func startLiveSampler(env *Env, interval time.Duration) *liveSampler {
	s := &liveSampler{}
	s.series.Add(env.Sched.Now(), float64(env.Engine.Live()))
	s.stop = env.Sched.Every(interval, func() {
		s.series.Add(env.Sched.Now(), float64(env.Engine.Live()))
	})
	return s
}

// replayWithPolicy runs the standard QR workload under a policy and
// reports mean latency, cold-start fraction and average live
// containers.
func replayWithPolicy(kind PolicyKind, opts EnvOptions, schedule []trace.Request) (meanMS float64, coldFrac float64, avgLive float64) {
	env := NewEnv(kind, opts)
	defer env.Close()
	if err := env.Deploy("qr", config.Runtime{Image: "python:3.8", Network: "nat"},
		workload.QRApp(workload.Python)); err != nil {
		panic(err)
	}
	sampler := startLiveSampler(env, 10*time.Second)
	results, err := env.Replay(schedule, singleClass("qr"))
	if err != nil {
		panic(err)
	}
	sampler.stop()
	cold, n := 0, 0
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		n++
		if !res.Reused {
			cold++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return meanTotalMS(results, nil), float64(cold) / float64(n), sampler.series.MeanValue()
}

// ablateKeepAlive compares fixed keep-alive windows against HotC on a
// bursty Poisson workload: short windows cold-start, long windows
// waste pool capacity; HotC adapts.
func ablateKeepAlive(r *Report) {
	schedule := trace.Poisson{Seed: 7, RatePerSec: 0.05, Length: time.Hour}.Generate() // ~3/minute
	t := r.NewTable("Ablation: fixed keep-alive window vs HotC (Poisson ~3 req/min, 1h)",
		"policy", "mean latency (ms)", "cold-start fraction", "avg live containers")
	for _, w := range []time.Duration{30 * time.Second, 2 * time.Minute, 15 * time.Minute, time.Hour} {
		mean, cold, live := replayWithPolicy(PolicyKeepAlive,
			EnvOptions{Seed: 20, KeepAliveWindow: w, PrePull: true}, schedule)
		t.AddRow("keepalive("+w.String()+")", msF(mean), pct(cold), f2(live))
	}
	mean, cold, live := replayWithPolicy(PolicyHotC, EnvOptions{Seed: 20, PrePull: true}, schedule)
	t.AddRow("hotc", msF(mean), pct(cold), f2(live))
	r.Notef("fixed windows trade cold starts against idle resources; HotC's prediction holds both down")
}

// ablatePoolCap sweeps the live-container cap under parallel traffic.
func ablatePoolCap(r *Report) {
	schedule := trace.Parallel{Threads: 8, Interval: 30 * time.Second, Rounds: 10}.Generate()
	t := r.NewTable("Ablation: pool capacity under 8-way parallel traffic",
		"max live", "mean latency (ms)", "cold-start fraction", "evictions")
	for _, maxLive := range []int{2, 4, 8, 16} {
		env := NewEnv(PolicyHotC, EnvOptions{
			Seed:    21,
			PrePull: true,
			Core:    core.Options{Pool: pool.Options{MaxLive: maxLive}},
		})
		if err := env.Deploy("qr", config.Runtime{Image: "python:3.8", Network: "nat"},
			workload.QRApp(workload.Python)); err != nil {
			panic(err)
		}
		results, err := env.Replay(schedule, singleClass("qr"))
		if err != nil {
			panic(err)
		}
		cold, n := 0, 0
		for _, res := range results {
			if res.Err == nil {
				n++
				if !res.Reused {
					cold++
				}
			}
		}
		t.AddRow(fmt.Sprintf("%d", maxLive), msF(meanTotalMS(results, nil)),
			pct(float64(cold)/float64(n)),
			fmt.Sprintf("%d", env.HotC.Pool().Stats().Evictions))
		env.Close()
	}
	r.Notef("a cap below the concurrency level forces evict-and-recreate churn; at or above it, reuse is clean")
}

// ablateRelaxed compares exact-key matching against relaxed-key reuse
// on a workload where every request carries a unique environment
// variable (same image and namespaces).
func ablateRelaxed(r *Report) {
	t := r.NewTable("Ablation: relaxed-key reuse (§VII future work) under unique-env requests",
		"matching", "mean latency (ms)", "pool hit rate")
	for _, relaxed := range []bool{false, true} {
		env := NewEnv(PolicyHotC, EnvOptions{
			Seed:    22,
			PrePull: true,
			Core:    core.Options{Pool: pool.Options{EnableRelaxed: relaxed}},
		})
		// 20 functions, all python QR with a unique env var each: the
		// full keys differ, the relaxed keys match.
		names := make([]string, 20)
		for i := range names {
			names[i] = fmt.Sprintf("qr-%d", i)
			rt := config.Runtime{
				Image: "python:3.8", Network: "nat",
				Env: []string{fmt.Sprintf("REQ=%d", i)},
			}
			if err := env.Deploy(names[i], rt, workload.QRApp(workload.Python)); err != nil {
				panic(err)
			}
		}
		var schedule []trace.Request
		for i := 0; i < 20; i++ {
			schedule = append(schedule, trace.Request{At: time.Duration(i) * 15 * time.Second, Class: i, Round: i})
		}
		results, err := env.Replay(schedule, func(c int) string { return names[c%len(names)] })
		if err != nil {
			panic(err)
		}
		st := env.HotC.Pool().Stats()
		hitRate := 0.0
		if st.Hits+st.Misses > 0 {
			hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		label := "exact keys"
		if relaxed {
			label = "relaxed keys"
		}
		t.AddRow(label, msF(meanTotalMS(results, nil)), pct(hitRate))
		env.Close()
	}
	r.Notef("relaxed matching turns unique-env misses into hits by applying the delta at exec time")
}

// PolicyShootout compares every policy on the scaled campus trace —
// the summary experiment tying the baselines together.
func PolicyShootout() *Report {
	r := NewReport("shootout", "all policies on the campus diurnal trace")
	// Three hours around the burst (T600..T780), scaled 20x down.
	campus := trace.Campus{Seed: 33, Scale: 20, Minutes: 180}
	full := campus.Generate()
	// Shift to start at T600 by regenerating with offset semantics:
	// take the slice as-is (the envelope's first 180 minutes), which
	// exercises quiet + burst-free traffic; then add the burst window.
	schedule := full

	t := r.NewTable("Policy shootout (campus trace, 3h, scaled)",
		"policy", "mean latency (ms)", "p99 (ms)", "cold-start fraction", "avg live containers")
	kinds := []struct {
		kind PolicyKind
		opts EnvOptions
	}{
		{PolicyCold, EnvOptions{Seed: 34, PrePull: true}},
		{PolicyKeepAlive, EnvOptions{Seed: 34, KeepAliveWindow: 15 * time.Minute, PrePull: true}},
		{PolicyWarmup, EnvOptions{Seed: 34, WarmupPeriod: 5 * time.Minute, KeepAliveWindow: 15 * time.Minute, PrePull: true}},
		{PolicyHistogram, EnvOptions{Seed: 34, PrePull: true}},
		{PolicyHotC, EnvOptions{Seed: 34, PrePull: true, Core: core.Options{Interval: time.Minute}}},
	}
	for _, k := range kinds {
		env := NewEnv(k.kind, k.opts)
		if err := env.Deploy("qr", config.Runtime{Image: "python:3.8", Network: "nat"},
			workload.QRApp(workload.Python)); err != nil {
			panic(err)
		}
		sampler := startLiveSampler(env, 30*time.Second)
		results, err := env.Replay(schedule, singleClass("qr"))
		if err != nil {
			panic(err)
		}
		sampler.stop()
		var lat metrics.Series
		cold, n := 0, 0
		for _, res := range results {
			if res.Err != nil {
				continue
			}
			n++
			lat.AddDuration(res.Timestamps.Total())
			if !res.Reused {
				cold++
			}
		}
		t.AddRow(env.Provider.Name(), msF(lat.Mean()), msF(lat.Percentile(99)),
			pct(float64(cold)/float64(max(n, 1))), f2(sampler.series.MeanValue()))
		env.Close()
	}
	r.Notef("HotC matches the latency of always-warm policies at a fraction of the retained pool; the cold baseline pays full setup on every request")
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
