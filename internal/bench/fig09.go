package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/costmodel"
	"hotc/internal/faas"
	"hotc/internal/rng"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// fig09Functions defines the Fig. 9 web application: the URL-to-QR
// service implemented "in different languages including Python, Go,
// Node.js" behind NAT (bridge) networking. Clients send requests
// "using random configurations", i.e. the class sequence is a random
// choice among these functions.
func fig09Functions() []faas.Function {
	return []faas.Function{
		{Name: "qr-python", Runtime: config.Runtime{Image: "python:3.8", Network: "nat"}, App: workload.QRApp(workload.Python)},
		{Name: "qr-go", Runtime: config.Runtime{Image: "golang:1.12", Network: "nat"}, App: workload.QRApp(workload.Go)},
		{Name: "qr-node", Runtime: config.Runtime{Image: "node:10", Network: "nat"}, App: workload.QRApp(workload.Node)},
	}
}

// fig09Schedule builds the random-configuration request stream.
func fig09Schedule(n int, seed int64) []trace.Request {
	src := rng.New(seed)
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{
			At:    time.Duration(i) * 3 * time.Second,
			Class: src.Intn(3),
			Round: i,
		}
	}
	return reqs
}

// fig09Run replays the stream under a policy and returns the results.
func fig09Run(kind PolicyKind, n int) []faas.Result {
	env := NewEnv(kind, EnvOptions{Profile: costmodel.Server(), Seed: 909, PrePull: true})
	defer env.Close()
	fns := fig09Functions()
	for _, fn := range fns {
		if err := env.Deploy(fn.Name, fn.Runtime, fn.App); err != nil {
			panic(err)
		}
	}
	classFn := func(c int) string { return fns[c%len(fns)].Name }
	results, err := env.Replay(fig09Schedule(n, 99), classFn)
	if err != nil {
		panic(err)
	}
	return results
}

// Fig09 reproduces the web-application latency study: request latency
// without HotC (every request pays container runtime setup) versus
// with HotC (after the first few requests, runtimes are reused and
// latency collapses towards the ~60ms URL transformation itself).
func Fig09(requests int) *Report {
	if requests <= 0 {
		requests = 40
	}
	r := NewReport("fig09", "web QR service latency w/o and w/ HotC")

	baseline := fig09Run(PolicyCold, requests)
	hotc := fig09Run(PolicyHotC, requests)

	t := r.NewTable("Fig. 9 per-request latency (random function configurations)",
		"request", "function", "w/o HotC (ms)", "w/ HotC (ms)", "reused")
	show := requests
	if show > 20 {
		show = 20
	}
	for i := 0; i < show; i++ {
		reusedStr := "no"
		if hotc[i].Reused {
			reusedStr = "yes"
		}
		t.AddRow(fmt.Sprintf("%d", i+1), hotc[i].Function,
			msF(float64(baseline[i].Timestamps.Total())/float64(time.Millisecond)),
			msF(float64(hotc[i].Timestamps.Total())/float64(time.Millisecond)),
			reusedStr)
	}

	baseMean := meanTotalMS(baseline, nil)
	hotcMean := meanTotalMS(hotc, nil)
	// Steady state: skip the first requests that cannot reuse yet.
	steady := func(res faas.Result) bool { return res.Request.Round >= 6 }
	hotcSteady := meanTotalMS(hotc, steady)
	baseSteady := meanTotalMS(baseline, steady)

	s := r.NewTable("Fig. 9 summary", "metric", "w/o HotC", "w/ HotC")
	s.AddRow("mean latency (ms)", msF(baseMean), msF(hotcMean))
	s.AddRow("steady-state mean (ms)", msF(baseSteady), msF(hotcSteady))
	exec := float64(workload.QRApp(workload.Python).Exec) / float64(time.Millisecond)
	r.Notef("URL transformation itself is ~%.0fms; without HotC the remainder is resource allocation and runtime setup (§V.B)", exec)
	r.Notef("steady-state HotC latency is %s of the no-HotC latency", pct(hotcSteady/baseSteady))
	return r
}
