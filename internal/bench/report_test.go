package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	r := NewReport("figXX", "sample experiment")
	t := r.NewTable("Latency by round", "round", "mean (ms)")
	t.AddRow("1", "12.50")
	t.AddRow("2", "3.25")
	r.Notef("note %d", 1)
	return r
}

func TestTableString(t *testing.T) {
	r := sampleReport()
	out := r.Tables[0].String()
	if !strings.Contains(out, "Latency by round") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, separator, two rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "round" padded to width of rows.
	if !strings.HasPrefix(lines[1], "round") {
		t.Fatalf("header line = %q", lines[1])
	}
}

func TestReportString(t *testing.T) {
	out := sampleReport().String()
	for _, want := range []string{"== figXX: sample experiment ==", "note: note 1", "12.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	csvOut := sampleReport().Tables[0].CSV()
	want := "round,mean (ms)\n1,12.50\n2,3.25\n"
	if csvOut != want {
		t.Fatalf("CSV = %q, want %q", csvOut, want)
	}
}

func TestTableCSVEscapes(t *testing.T) {
	tab := &Table{Title: "x", Headers: []string{"a,b", "c"}}
	tab.AddRow(`has "quotes"`, "plain")
	out := tab.CSV()
	if !strings.Contains(out, `"a,b"`) || !strings.Contains(out, `"has ""quotes"""`) {
		t.Fatalf("CSV escaping broken: %q", out)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Fig. 4(c) network setup cost": "fig-4-c-network-setup-cost",
		"   weird---title!!!   ":       "weird-title",
		"":                             "",
		"ABC123":                       "abc123",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCSVFiles(t *testing.T) {
	dir := t.TempDir()
	paths, err := sampleReport().WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	want := filepath.Join(dir, "figXX--latency-by-round.csv")
	if paths[0] != want {
		t.Fatalf("path = %q, want %q", paths[0], want)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "round,mean (ms)") {
		t.Fatalf("file content = %q", data)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if ms(1500*time.Millisecond) != "1500.00" {
		t.Fatalf("ms = %q", ms(1500*time.Millisecond))
	}
	if msF(12.345) != "12.35" {
		t.Fatalf("msF = %q", msF(12.345))
	}
	if pct(0.333) != "33.3%" {
		t.Fatalf("pct = %q", pct(0.333))
	}
	if f2(1.005) == "" {
		t.Fatal("f2 empty")
	}
}
