package bench

import (
	"time"

	"hotc/internal/config"
	"hotc/internal/costmodel"
	"hotc/internal/faas"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// Fig08 reproduces the image-recognition startup/execution study: the
// Python inception-v3 app (v3-app) and the Go TensorFlow-API app
// (TF-API-app) run with and without HotC, on the server (Fig. 8a,
// bridge/NAT networking) and on the Raspberry Pi (Fig. 8b, overlay
// networking, per §V.B). Each cell is the mean of ten runs, like the
// paper.
func Fig08() *Report {
	r := NewReport("fig08", "image recognition execution time w/ and w/o HotC (server and edge)")

	type cell struct {
		app workload.App
		rt  config.Runtime
	}
	hosts := []struct {
		label string
		prof  costmodel.Profile
		net   string
	}{
		{"server (Fig. 8a)", costmodel.Server(), "bridge"},
		{"edge-pi (Fig. 8b)", costmodel.EdgePi(), "overlay"},
	}
	paper := map[string]map[string]float64{
		"server (Fig. 8a)":  {"v3-app": 0.332, "tf-api-app": 0.239},
		"edge-pi (Fig. 8b)": {"v3-app": 0.266, "tf-api-app": 0.206},
	}

	for _, h := range hosts {
		t := r.NewTable("Fig. 8 "+h.label+" (mean of 10 runs)",
			"application", "w/o HotC (ms)", "w/ HotC (ms)", "reduction", "paper")
		for _, c := range []cell{
			{workload.V3App(), config.Runtime{Image: "tensorflow:1.13", Network: h.net}},
			{workload.TFAPIApp(), config.Runtime{Image: "tensorflow:1.13", Network: h.net}},
		} {
			base := fig08Run(PolicyCold, h.prof, c.rt, c.app)
			hotc := fig08Run(PolicyHotC, h.prof, c.rt, c.app)
			reduction := 1 - hotc/base
			t.AddRow(c.app.Name, msF(base), msF(hotc), pct(reduction),
				pct(paper[h.label][c.app.Name]))
		}
	}
	r.Notef("reductions come from skipping container boot, runtime init and model load on reuse; the Pi's 10x slower execution dilutes (but does not erase) the benefit, as in the paper")
	return r
}

// fig08Run measures the steady-state mean request latency of ten
// sequential runs under a policy. For HotC the first (unavoidably
// cold) run is excluded, matching the paper's reuse-steady-state
// comparison; for the cold baseline all runs are cold anyway.
func fig08Run(kind PolicyKind, prof costmodel.Profile, rt config.Runtime, app workload.App) float64 {
	env := NewEnv(kind, EnvOptions{Profile: prof, Seed: 808, PrePull: true})
	defer env.Close()
	if err := env.Deploy(app.Name, rt, app); err != nil {
		panic(err)
	}
	schedule := trace.Serial{Interval: 5 * time.Minute, Count: 11}.Generate()
	results, err := env.Replay(schedule, singleClass(app.Name))
	if err != nil {
		panic(err)
	}
	keep := func(res faas.Result) bool {
		if kind == PolicyHotC {
			return res.Request.Round > 0
		}
		return true
	}
	return meanTotalMS(results, keep)
}
