package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/core"
	"hotc/internal/faas"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// fig13Run replays a single-class pattern under a policy with the QR
// workload and the controller tuned to the pattern's round interval.
func fig13Run(kind PolicyKind, pattern trace.Pattern) []faas.Result {
	env := NewEnv(kind, EnvOptions{
		Seed:    1313,
		PrePull: true,
		Core:    core.Options{Interval: 30 * time.Second},
	})
	defer env.Close()
	if err := env.Deploy("qr", config.Runtime{Image: "python:3.8", Network: "nat"},
		workload.QRApp(workload.Python)); err != nil {
		panic(err)
	}
	results, err := env.Replay(pattern.Generate(), singleClass("qr"))
	if err != nil {
		panic(err)
	}
	return results
}

// roundTable renders per-round mean latencies for baseline vs HotC,
// plus the count of cold (non-reused) requests under HotC.
func roundTable(r *Report, title string, rounds int, base, hotc []faas.Result) {
	t := r.NewTable(title, "round", "requests", "w/o HotC mean (ms)", "w/ HotC mean (ms)", "HotC cold starts")
	for round := 0; round < rounds; round++ {
		keep := func(res faas.Result) bool { return res.Request.Round == round }
		n, cold := 0, 0
		for _, res := range hotc {
			if res.Request.Round == round && res.Err == nil {
				n++
				if !res.Reused {
					cold++
				}
			}
		}
		if n == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d", round+1), fmt.Sprintf("%d", n),
			msF(meanTotalMS(base, keep)), msF(meanTotalMS(hotc, keep)),
			fmt.Sprintf("%d", cold))
	}
}

// Fig13 reproduces the linear increasing and decreasing request flows:
// requests start at two per round and change by two every 30 seconds.
// Increasing: HotC reuses the previous round's runtimes and only the
// two newly added requests can cold start (and the adaptive controller
// pre-warms even those away once the trend is learned). Decreasing:
// after the first round there is always a warm container available, so
// latency is always low under HotC.
func Fig13() *Report {
	r := NewReport("fig13", "linear increasing and decreasing request flows")

	inc := trace.Linear{Start: 2, Step: 2, Rounds: 10, Interval: 30 * time.Second}
	baseInc := fig13Run(PolicyCold, inc)
	hotcInc := fig13Run(PolicyHotC, inc)
	roundTable(r, "Fig. 13(a) linear increasing (+2 every 30s)", inc.Rounds, baseInc, hotcInc)

	dec := trace.Linear{Start: 20, Step: -2, Rounds: 10, Interval: 30 * time.Second}
	baseDec := fig13Run(PolicyCold, dec)
	hotcDec := fig13Run(PolicyHotC, dec)
	roundTable(r, "Fig. 13(b) linear decreasing (-2 every 30s)", dec.Rounds, baseDec, hotcDec)

	// Quantify the paper's claims.
	coldLate := 0
	totalLate := 0
	for _, res := range hotcInc {
		if res.Request.Round >= 2 {
			totalLate++
			if !res.Reused {
				coldLate++
			}
		}
	}
	r.Notef("increasing: %d/%d requests after round 2 cold-started under HotC (paper: at most the +2 new requests per round wait for new runtimes)", coldLate, totalLate)

	decCold := 0
	for _, res := range hotcDec {
		if res.Request.Round >= 1 && !res.Reused {
			decCold++
		}
	}
	r.Notef("decreasing: %d cold starts after round 1 (paper: 'there is always a container available if the requests keep decreasing')", decCold)
	return r
}
