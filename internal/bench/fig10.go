package bench

import (
	"fmt"
	"math"

	"hotc/internal/metrics"
	"hotc/internal/predictor"
	"hotc/internal/rng"
)

// fig10Series builds the demand series of Fig. 10: the live number of
// a specific container type needed per control interval. It opens with
// the paper's highlighted event — a stable level around 8 that jumps
// to ~19 at index 7 (where the paper reports the relative error
// dropping from 29% to 10% as ES catches up) — and continues with
// recurring ramp waves, the long-horizon structure the error-chain
// correction needs history to learn from.
func fig10Series() []float64 {
	src := rng.New(1010)
	var s []float64
	add := func(level float64, n int, jitter float64) {
		for i := 0; i < n; i++ {
			s = append(s, math.Max(0, math.Round(level+src.Norm(0, jitter))))
		}
	}
	add(8, 7, 1.0)   // stable low level
	add(19, 13, 1.2) // the 8 -> 19 jump at index 7
	// The bulk of the horizon: a recurring linearly-increasing demand
	// wave (the Fig. 13 pattern — the paper's §V.D request flows recur
	// over time), where exponential smoothing lags systematically and
	// the Markov error chain has structure to learn.
	for cycle := 0; cycle < 9; cycle++ {
		for i := 0; i < 20; i++ {
			s = append(s, math.Max(0, math.Round(4+float64(i)*2+src.Norm(0, 1.0))))
		}
	}
	return s
}

// Fig10 reproduces the prediction-strategy evaluation: (a) real demand
// versus exponential smoothing alone versus the combined ES+Markov
// predictor; (b) sensitivity to the smoothing coefficient alpha and to
// the initial-value choice.
func Fig10() *Report {
	r := NewReport("fig10", "adaptive live container prediction (ES vs ES+Markov)")
	series := fig10Series()

	esPred := predictor.Backtest(predictor.NewES(predictor.DefaultAlpha), series)
	combPred := predictor.Backtest(predictor.Default(), series)

	ta := r.NewTable("Fig. 10(a) real vs predicted container demand (first 25 of 200 intervals)",
		"interval", "real", "ES", "ES+Markov", "ES rel.err", "ES+Markov rel.err")
	for i := range series {
		if i >= 25 {
			break
		}
		relES, relC := "-", "-"
		if series[i] > 0 && i > 0 {
			relES = pct(math.Abs(esPred[i]-series[i]) / series[i])
			relC = pct(math.Abs(combPred[i]-series[i]) / series[i])
		}
		ta.AddRow(fmt.Sprintf("%d", i), f2(series[i]), f2(esPred[i]), f2(combPred[i]), relES, relC)
	}
	from := 5 // score after warmup
	esMAE := metrics.MeanAbsError(esPred[from:], series[from:])
	combMAE := metrics.MeanAbsError(combPred[from:], series[from:])
	esMRE := metrics.MeanRelError(esPred[from:], series[from:])
	combMRE := metrics.MeanRelError(combPred[from:], series[from:])
	r.Notef("MAE: ES=%.2f ES+Markov=%.2f; mean relative error: ES=%s ES+Markov=%s — the Markov revision absorbs the volatility ES lags on (§V.C)",
		esMAE, combMAE, pct(esMRE), pct(combMRE))

	// (b) alpha sensitivity.
	tb := r.NewTable("Fig. 10(b) sensitivity to smoothing coefficient α (combined predictor)",
		"α", "MAE", "mean rel.err")
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		p := predictor.Backtest(predictor.NewCombined(alpha, predictor.DefaultStates), series)
		tb.AddRow(f2(alpha), f2(metrics.MeanAbsError(p[from:], series[from:])),
			pct(metrics.MeanRelError(p[from:], series[from:])))
	}
	r.Notef("larger α tracks recent data harder; the paper selects α=0.8 for volatile serverless series (§IV.C.2)")

	// (b) initial-value sensitivity: first observation vs the mean of
	// the first five (the paper's choice).
	tc := r.NewTable("Fig. 10(b) sensitivity to the initial value (early predictions, ES α=0.8)",
		"initialisation", "MAE over first 6 intervals")
	first := predictor.NewES(predictor.DefaultAlpha)
	first.InitWindow = 1
	firstPred := predictor.Backtest(first, series)
	meanPred := predictor.Backtest(predictor.NewES(predictor.DefaultAlpha), series)
	tc.AddRow("first observation", f2(metrics.MeanAbsError(firstPred[1:7], series[1:7])))
	tc.AddRow("mean of first five (paper)", f2(metrics.MeanAbsError(meanPred[1:7], series[1:7])))
	r.Notef("the initial value matters only for the first few predictions; its influence vanishes as more data enters the model (§IV.C.2)")
	return r
}
