package bench

import (
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/faas"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// RelatedWork compares HotC's runtime reuse against the alternative
// cold-start mechanisms from the paper's §VI related work, implemented
// as engine start mechanisms:
//
//   - vanilla Docker-style boot + init (the paper's baseline);
//   - SOCK-style zygote forking (Oakes et al.) — lean engine setup and
//     pre-loaded language runtime, application init still paid;
//   - checkpoint/restore (Wang et al., Replayable Execution) — restore
//     a post-init snapshot, cost growing with resident memory;
//   - HotC — reuse the live runtime, no per-request start at all.
//
// Two workloads separate the mechanisms: the light QR function (small
// app init, tiny snapshot) and the model-heavy v3 inference app (long
// app init, large snapshot).
func RelatedWork() *Report {
	r := NewReport("relatedwork", "cold-start mechanisms vs runtime reuse (§VI)")

	apps := []struct {
		app workload.App
		rt  config.Runtime
	}{
		{workload.QRApp(workload.Python), config.Runtime{Image: "python:3.8", Network: "nat"}},
		{workload.V3App(), config.Runtime{Image: "tensorflow:1.13", Network: "nat"}},
	}
	mechanisms := []container.Mechanism{container.Vanilla, container.Zygote, container.Checkpoint}

	for _, a := range apps {
		t := r.NewTable("Per-request latency with each mechanism — "+a.app.Name,
			"mechanism", "every-request cold (ms)", "vs vanilla")
		var vanillaMean float64
		for _, mech := range mechanisms {
			env := NewEnv(PolicyCold, EnvOptions{Seed: 61, PrePull: true})
			env.Engine.Mechanism = mech
			if err := env.Deploy(a.app.Name, a.rt, a.app); err != nil {
				panic(err)
			}
			results, err := env.Replay(trace.Serial{Interval: time.Minute, Count: 8}.Generate(),
				singleClass(a.app.Name))
			if err != nil {
				panic(err)
			}
			mean := meanTotalMS(results, nil)
			if mech == container.Vanilla {
				vanillaMean = mean
			}
			t.AddRow(mech.String(), msF(mean), pct(mean/vanillaMean))
			env.Close()
		}
		// HotC: only the first request cold, then reuse.
		env := NewEnv(PolicyHotC, EnvOptions{Seed: 61, PrePull: true})
		if err := env.Deploy(a.app.Name, a.rt, a.app); err != nil {
			panic(err)
		}
		results, err := env.Replay(trace.Serial{Interval: time.Minute, Count: 8}.Generate(),
			singleClass(a.app.Name))
		if err != nil {
			panic(err)
		}
		steady := meanTotalMS(results, func(res faas.Result) bool { return res.Request.Round > 0 })
		t.AddRow("hotc (reuse, steady state)", msF(steady), pct(steady/vanillaMean))
		env.Close()
	}

	r.Notef("zygote forking removes runtime init but still pays application init — it helps the interpreter-heavy QR app more than the model-load-bound v3 app")
	r.Notef("checkpoint/restore is near-warm for small functions but pays restore proportional to resident memory on the model-heavy app")
	r.Notef("reuse sidesteps the start entirely: HotC's steady state beats every per-request mechanism, which is the paper's core argument")
	return r
}
