package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/faas"
	"hotc/internal/metrics"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// Fig01 reproduces the paper's Fig. 1 AWS Lambda study: a client sends
// one request per second for 10 seconds, waits 30 minutes, and
// repeats. Lambda-style fixed keep-alive (15 minutes) means the first
// request of every burst cold-starts, producing (a) the
// slowest-first-request pattern and (b) the long-tail latency CDF
// compared with a local function.
func Fig01(cycles int) *Report {
	if cycles <= 0 {
		cycles = 6
	}
	r := NewReport("fig01", "AWS Lambda request latency and cold-start long tail")

	env := NewEnv(PolicyKeepAlive, EnvOptions{
		Seed:            101,
		KeepAliveWindow: 15 * time.Minute,
		PrePull:         true,
	})
	defer env.Close()
	app := workload.RandomNumber(workload.Python)
	if err := env.Deploy("rand", config.Runtime{Image: "python:3.8"}, app); err != nil {
		panic(err)
	}

	// Build the burst-and-idle schedule.
	var schedule []trace.Request
	at := time.Duration(0)
	for c := 0; c < cycles; c++ {
		for i := 0; i < 10; i++ {
			schedule = append(schedule, trace.Request{At: at, Round: c*10 + i})
			at += time.Second
		}
		at += 30 * time.Minute
	}
	results, err := env.Replay(schedule, singleClass("rand"))
	if err != nil {
		panic(err)
	}

	// The paper measures at the client, through API Gateway over the
	// internet: the wire time is part of every sample and compresses
	// the cold/warm ratio (AWS's measured highest/lowest is only
	// 1.418x because the network and managed-platform floor is large
	// relative to Lambda's heavily optimised cold start).
	const clientRTT = 250 * time.Millisecond

	// (a) latency by position within the burst.
	posSeries := make([]metrics.Series, 10)
	var all metrics.Series
	for _, res := range results {
		if res.Err != nil {
			continue
		}
		pos := res.Request.Round % 10
		lat := res.Timestamps.Total() + clientRTT
		posSeries[pos].AddDuration(lat)
		all.AddDuration(lat)
	}
	ta := r.NewTable("Fig. 1(a) mean latency by position within each 10-request burst",
		"position", "mean latency (ms)", "reused")
	for pos := range posSeries {
		reused := "yes"
		if pos == 0 {
			reused = "no (cold)"
		}
		ta.AddRow(fmt.Sprintf("%d", pos+1), msF(posSeries[pos].Mean()), reused)
	}

	highest := all.Max()
	lowest := all.Min()
	mean := all.Mean()
	r.Notef("highest/lowest latency = %.3f (paper: 1.418); highest/mean = %.3f (paper: 1.317)",
		highest/lowest, highest/mean)
	r.Notef("our simulated container cold start is a larger fraction of the request than AWS Lambda's snapshot-optimised one, so the spread is wider; the shape — first request of every burst slowest, long tail — is the paper's")

	// (b) latency CDF versus a local function call (no serverless
	// pipeline: just the function body).
	local := float64(env.Engine.Model().ExecCost(app.Exec)) / float64(time.Millisecond)
	tb := r.NewTable("Fig. 1(b) latency distribution: serverless vs local function",
		"percentile", "serverless (ms)", "local fn (ms)")
	for _, p := range []float64{50, 90, 95, 99, 99.9, 100} {
		tb.AddRow(fmt.Sprintf("p%g", p), msF(all.Percentile(p)), msF(local))
	}
	r.Notef("serverless p99/p50 = %.2f — the long tail the paper attributes to cold start; the local function is flat",
		all.Percentile(99)/all.Percentile(50))
	return r
}

// fig01Results is exposed for tests: the burst replay outcome.
func fig01Results(cycles int) []faas.Result {
	env := NewEnv(PolicyKeepAlive, EnvOptions{Seed: 101, KeepAliveWindow: 15 * time.Minute, PrePull: true})
	defer env.Close()
	app := workload.RandomNumber(workload.Python)
	if err := env.Deploy("rand", config.Runtime{Image: "python:3.8"}, app); err != nil {
		panic(err)
	}
	var schedule []trace.Request
	at := time.Duration(0)
	for c := 0; c < cycles; c++ {
		for i := 0; i < 10; i++ {
			schedule = append(schedule, trace.Request{At: at, Round: c*10 + i})
			at += time.Second
		}
		at += 30 * time.Minute
	}
	results, err := env.Replay(schedule, singleClass("rand"))
	if err != nil {
		panic(err)
	}
	return results
}
