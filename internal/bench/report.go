// Package bench contains the experiment drivers that regenerate every
// figure of the paper's evaluation (§II.C, §III, §V), plus the
// ablation studies listed in DESIGN.md. Each FigNN function runs the
// experiment on the deterministic simulation substrate and returns a
// Report of text tables whose rows mirror the quantities the paper
// plots; cmd/hotc-bench prints them and bench_test.go wraps them in
// testing.B benchmarks.
package bench

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Table is one rendered result table.
type Table struct {
	// Title names the table, e.g. "Fig. 4(c) network setup cost".
	Title string
	// Headers are the column names.
	Headers []string
	// Rows are the data cells, already formatted.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows),
// ready for external plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(t.Headers)
	for _, row := range t.Rows {
		w.Write(row)
	}
	w.Flush()
	return b.String()
}

// slug converts a table title into a file-name-safe identifier.
func slug(s string) string {
	var b strings.Builder
	lastDash := true
	for _, c := range strings.ToLower(s) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteRune(c)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.Trim(b.String(), "-")
}

// Report is the output of one experiment: tables plus free-form notes
// comparing measured shapes against the paper's reported numbers.
type Report struct {
	// ID is the experiment identifier, e.g. "fig08".
	ID string
	// Title describes the experiment.
	Title string
	// Tables hold the regenerated figure data.
	Tables []*Table
	// Notes record paper-vs-measured comparisons.
	Notes []string
}

// NewReport creates a report.
func NewReport(id, title string) *Report {
	return &Report{ID: id, Title: title}
}

// NewTable creates, registers and returns a table.
func (r *Report) NewTable(title string, headers ...string) *Table {
	t := &Table{Title: title, Headers: headers}
	r.Tables = append(r.Tables, t)
	return t
}

// Notef appends a formatted note.
func (r *Report) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteCSV writes every table as "<id>--<table-slug>.csv" in dir,
// returning the file paths.
func (r *Report) WriteCSV(dir string) ([]string, error) {
	var paths []string
	for i, t := range r.Tables {
		name := fmt.Sprintf("%s--%s.csv", r.ID, slug(t.Title))
		if s := slug(t.Title); s == "" {
			name = fmt.Sprintf("%s--table-%d.csv", r.ID, i)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return nil, fmt.Errorf("bench: writing %s: %w", path, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// String renders the whole report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// ms formats a duration as milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// msF formats a float64 of milliseconds.
func msF(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
