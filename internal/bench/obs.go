package bench

import (
	"hotc/internal/obs"
	"hotc/internal/pool"
)

// Package-level observability hookup. The figure experiments build
// their environments internally, so hotc-bench cannot thread a
// registry through each call; instead it arms these before running and
// every Env built afterwards instruments itself into them.
var (
	obsReg    *obs.Registry
	obsTracer *obs.Tracer
)

// EnableObservability attaches a metrics registry and (optionally) a
// span tracer to every environment NewEnv builds from now on. Families
// are shared across environments, so counters accumulate over all
// experiments in the run and gauges report the most recent
// environment's state. Pass nil values to detach.
//
// Not safe to call while experiments are running; arm it once at
// startup.
func EnableObservability(reg *obs.Registry, tracer *obs.Tracer) {
	obsReg = reg
	obsTracer = tracer
}

// instrument wires an assembled environment into the armed registry
// and tracer, covering the gateway plus whichever pool the policy
// branch created.
func (e *Env) instrument(p *pool.Pool) {
	if obsReg != nil {
		e.Gateway.Instrument(obsReg)
		if e.HotC != nil {
			e.HotC.Instrument(obsReg)
		} else if p != nil {
			p.Instrument(obsReg)
		}
	}
	if obsTracer != nil {
		e.Gateway.Trace(obsTracer)
	}
}
