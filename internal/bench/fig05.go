package bench

import (
	"time"

	"hotc/internal/config"
	"hotc/internal/trace"
	"hotc/internal/workload"
)

// Fig05 reproduces the §III.A quantitative breakdown of a request
// through the OpenFaaS pipeline, using the six recorded moments:
// gateway in (1), watchdog in (2), function start (3), function stop
// (4), watchdog out (5), client out (6). The paper's finding: for a
// cold request, function initiation (2->3) dominates total latency.
func Fig05() *Report {
	r := NewReport("fig05", "OpenFaaS request path breakdown (six timestamps)")

	env := NewEnv(PolicyKeepAlive, EnvOptions{KeepAliveWindow: time.Hour, PrePull: true})
	defer env.Close()
	app := workload.RandomNumber(workload.Go)
	if err := env.Deploy("rand", config.Runtime{Image: "golang:1.12"}, app); err != nil {
		panic(err)
	}

	// Two requests: the first cold, the second warm.
	results, err := env.Replay([]trace.Request{
		{At: 0, Round: 0},
		{At: time.Minute, Round: 1},
	}, singleClass("rand"))
	if err != nil {
		panic(err)
	}

	t := r.NewTable("Fig. 5 stage durations",
		"stage", "cold request (ms)", "warm request (ms)")
	cold, warm := results[0].Timestamps, results[1].Timestamps
	rows := []struct {
		name       string
		cold, warm time.Duration
	}{
		{"(1->2) gateway -> watchdog (incl. scale-up)", cold.WatchdogIn - cold.GatewayIn, warm.WatchdogIn - warm.GatewayIn},
		{"(2->3) function initiation", cold.Initiation(), warm.Initiation()},
		{"(3->4) function execution", cold.Execution(), warm.Execution()},
		{"(4->5) watchdog response", cold.WatchdogOut - cold.FuncStop, warm.WatchdogOut - warm.FuncStop},
		{"(5->6) gateway -> client", cold.ClientOut - cold.WatchdogOut, warm.ClientOut - warm.WatchdogOut},
		{"total (1->6)", cold.Total(), warm.Total()},
	}
	for _, row := range rows {
		t.AddRow(row.name, ms(row.cold), ms(row.warm))
	}

	// For a cold request, initiation plus scale-up dwarfs execution.
	initShare := float64(cold.Total()-cold.Execution()) / float64(cold.Total())
	r.Notef("cold request: initiation+scale-up is %s of total latency — 'function initiation time (2->3) dominates' (§III.A)", pct(initShare))
	r.Notef("warm request total is %s of cold total", pct(float64(warm.Total())/float64(cold.Total())))
	return r
}
