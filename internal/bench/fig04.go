package bench

import (
	"fmt"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/image"
	"hotc/internal/network"
	"hotc/internal/workload"
)

// Fig04 reproduces the §II.C motivation measurements:
//
//	(a) container launch time on the local server and the edge device,
//	    with locally stored versus remote images;
//	(b) cold versus hot execution of the S3-download program across
//	    languages (Go cold = 3.06x hot; Java cold doubles its already
//	    long execution);
//	(c) the build time of customised networks during container boot
//	    (bridge/host close to none, container mode about half,
//	    overlay/routing up to 23x host mode).
func Fig04() *Report {
	r := NewReport("fig04", "container launch, cold-vs-hot execution by language, network setup")

	// (a) launch time by profile and image locality.
	ta := r.NewTable("Fig. 4(a) container launch time (alpine, bridge network)",
		"host", "image", "launch (ms)")
	for _, prof := range []costmodel.Profile{costmodel.Server(), costmodel.EdgePi()} {
		for _, cached := range []bool{true, false} {
			env := engineOnly(prof, cached)
			spec := mustSpec(env, config.Runtime{Image: "alpine:3.9"})
			label := "local (cached)"
			if !cached {
				label = "remote (pull)"
			}
			ta.AddRow(prof.Name, label, ms(env.Engine.StartCost(spec)))
		}
	}

	// (b) cold vs hot execution per language.
	tb := r.NewTable("Fig. 4(b) S3-download program: cold vs hot execution",
		"language", "hot (ms)", "cold (ms)", "cold/hot")
	env := engineOnly(costmodel.Server(), true)
	for _, lang := range workload.Languages() {
		app := workload.S3Download(lang)
		spec := mustSpec(env, config.Runtime{Image: app.Image})
		m := env.Engine.Model()
		hot := m.ExecCost(app.Exec) + m.WatchdogShimCost()
		coldTotal := env.Engine.StartCost(spec) + m.InitCost(app.InitCost()) +
			m.ColdExecCost(app.Exec) + m.WatchdogShimCost()
		tb.AddRow(lang.String(), ms(hot), ms(coldTotal), f2(float64(coldTotal)/float64(hot)))
	}
	r.Notef("paper anchors: Go cold/hot = 3.06x; Java cold ~2x its hot execution and the longest absolute latency")

	// (c) network setup during boot.
	tc := r.NewTable("Fig. 4(c) container boot time by network mode (server)",
		"mode", "boot (ms)", "vs none", "vs host")
	cm := costmodel.New(costmodel.Server())
	none := network.None.BootCost(cm)
	hostBoot := network.Host.BootCost(cm)
	for _, m := range network.Modes() {
		boot := m.BootCost(cm)
		tc.AddRow(m.String(), ms(boot),
			f2(float64(boot)/float64(none)),
			f2(float64(boot)/float64(hostBoot)))
	}
	r.Notef("paper shape: bridge/host ~= none; container mode ~0.5x none; overlay up to 23x host")
	return r
}

// engineOnly wires an Env with just engine/registry/host (cold policy,
// unused), optionally pre-pulling images.
func engineOnly(prof costmodel.Profile, prePull bool) *Env {
	return NewEnv(PolicyCold, EnvOptions{Profile: prof, PrePull: prePull})
}

func mustSpec(env *Env, rt config.Runtime) container.Spec {
	spec, err := container.ResolveSpec(rt, env.Registry)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return spec
}

// coldRequestTotal is the full client-observed cold latency for an app
// under a network mode, used by several figures.
func coldRequestTotal(env *Env, spec container.Spec, app workload.App) time.Duration {
	m := env.Engine.Model()
	return env.Engine.StartCost(spec) + m.InitCost(app.InitCost()) +
		m.ColdExecCost(app.Exec) + m.WatchdogShimCost() + 2*m.GatewayForwardCost()
}

// warmRequestTotal is the client-observed warm latency.
func warmRequestTotal(env *Env, app workload.App) time.Duration {
	m := env.Engine.Model()
	return m.ExecCost(app.Exec) + m.WatchdogShimCost() + 2*m.GatewayForwardCost()
}

// mustLookupImage fetches a catalog image.
func mustLookupImage(env *Env, ref string) image.Image {
	im, err := env.Registry.Lookup(ref)
	if err != nil {
		panic(err)
	}
	return im
}
