package bench

import (
	"hotc/internal/image"
	"hotc/internal/rng"
)

// Fig02 reproduces the Dockerfile corpus survey of Fig. 2: base-image
// popularity over all projects and over the 100 most-starred projects
// (2a), and the OS/language/application category breakdown of base
// images (2b).
func Fig02(projects int) *Report {
	if projects <= 0 {
		projects = 3000
	}
	r := NewReport("fig02", "GitHub Dockerfile survey: base image popularity and categories")

	corpus, err := image.GenerateCorpus(rng.New(2021), projects)
	if err != nil {
		panic(err)
	}

	all := corpus.Popularity(corpus.All())
	top := corpus.Popularity(corpus.TopByStars(100))

	ta := r.NewTable("Fig. 2(a) base image share (top 10 images)",
		"base image", "all projects", "top-100 projects")
	topShare := map[string]float64{}
	for _, s := range top.Shares {
		topShare[s.Base] = s.Share
	}
	for i, s := range all.Shares {
		if i >= 10 {
			break
		}
		ta.AddRow(s.Base, pct(s.Share), pct(topShare[s.Base]))
	}
	r.Notef("top-10 base images cover %s of all %d projects and %s of the top-100 — 'dominated by a few commonly used images'",
		pct(all.Top10Share), all.Total, pct(top.Top10Share))

	cats := corpus.Categories(corpus.All())
	tb := r.NewTable("Fig. 2(b) base image categories", "category", "share")
	tb.AddRow("OS", pct(cats.OS))
	tb.AddRow("language runtime", pct(cats.Language))
	tb.AddRow("application", pct(cats.Application))
	r.Notef("OS and language images dominate the base-image settings (%s combined)",
		pct(cats.OS+cats.Language))

	return r
}
