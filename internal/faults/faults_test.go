package faults

import (
	"strings"
	"testing"
	"time"

	"hotc/internal/config"
	"hotc/internal/container"
	"hotc/internal/costmodel"
	"hotc/internal/image"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

type fixture struct {
	sched *simclock.Scheduler
	eng   *container.Engine
	reg   *image.Registry
	inj   *Injector
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	sched := simclock.New()
	reg := image.StandardCatalog()
	eng := container.NewEngine(sched, costmodel.New(costmodel.Server()), reg, image.NewCache(), nil)
	inj, err := New(cfg, sched.Now)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(eng)
	return &fixture{sched: sched, eng: eng, reg: reg, inj: inj}
}

func (f *fixture) spec(t *testing.T, image string) container.Spec {
	t.Helper()
	s, err := container.ResolveSpec(config.Runtime{Image: image}, f.reg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// create drives one engine Create to completion.
func (f *fixture) create(t *testing.T, spec container.Spec) (*container.Container, error) {
	t.Helper()
	var ctr *container.Container
	var cerr error
	done := false
	f.eng.Create(spec, func(c *container.Container, err error) {
		ctr, cerr, done = c, err, true
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("create never completed")
	}
	return ctr, cerr
}

// exec drives one engine Exec to completion.
func (f *fixture) exec(t *testing.T, c *container.Container, app workload.App) error {
	t.Helper()
	var eerr error
	done := false
	f.eng.Exec(c, app, func(_ time.Duration, err error) {
		eerr, done = err, true
	})
	if err := f.sched.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("exec never completed")
	}
	return eerr
}

func TestValidateRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{Rules: []Rule{{CreateFailRate: -0.1}}},
		{Rules: []Rule{{ExecCrashRate: 1.5}}},
		{Rules: []Rule{{SlowStartFactor: -1}}},
		{Rules: []Rule{{Bursts: []Burst{{StartSec: -1, DurationSec: 10}}}}},
		{Rules: []Rule{{Bursts: []Burst{{StartSec: 0, DurationSec: 0}}}}},
		{Rules: []Rule{{Bursts: []Burst{{StartSec: 0, DurationSec: 5, Multiplier: -2}}}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config validated but should not have", i)
		}
	}
	if _, err := New(Config{Rules: []Rule{{CreateFailRate: 2}}}, simclock.New().Now); err == nil {
		t.Error("New accepted an invalid config")
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("New accepted a nil clock")
	}
}

func TestCreateFailRateObserved(t *testing.T) {
	f := newFixture(t, Config{Seed: 3, Rules: []Rule{{CreateFailRate: 0.3}}})
	spec := f.spec(t, "python:3.8")
	fails := 0
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := f.create(t, spec); err != nil {
			fails++
		}
	}
	if fails != f.inj.Stats().CreateFails {
		t.Fatalf("observed %d fails but stats say %d", fails, f.inj.Stats().CreateFails)
	}
	// Loose band around the expected 150: the draw is seeded, so this
	// is a determinism check as much as a distribution check.
	if fails < 100 || fails > 200 {
		t.Fatalf("fails = %d out of %d, want roughly 30%%", fails, n)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (Stats, string) {
		f := newFixture(t, Config{Seed: 11, Rules: []Rule{{
			CreateFailRate: 0.2, ExecCrashRate: 0.1, CorruptRate: 0.1,
		}}})
		spec := f.spec(t, "python:3.8")
		app := workload.QRApp(workload.Python)
		var outcome strings.Builder
		for i := 0; i < 100; i++ {
			c, err := f.create(t, spec)
			if err != nil {
				outcome.WriteByte('C')
				continue
			}
			if err := f.exec(t, c, app); err != nil {
				outcome.WriteByte('X')
			} else {
				outcome.WriteByte('.')
			}
		}
		return f.inj.Stats(), outcome.String()
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 || o1 != o2 {
		t.Fatalf("same seed diverged:\n%+v %q\n%+v %q", s1, o1, s2, o2)
	}
	if s1.Total() == 0 {
		t.Fatal("no faults injected at 20%/10%/10% over 100 iterations")
	}
}

func TestRuleKeyMatchFirstWins(t *testing.T) {
	f := newFixture(t, Config{Seed: 5, Rules: []Rule{
		{KeyContains: "python", CreateFailRate: 1},
		{CreateFailRate: 0}, // catch-all: no faults
	}})
	pySpec := f.spec(t, "python:3.8")
	goSpec := f.spec(t, "golang:1.12")
	if _, err := f.create(t, pySpec); err == nil {
		t.Fatal("python create should always fail under its rule")
	}
	if _, err := f.create(t, goSpec); err != nil {
		t.Fatalf("golang create hit the python rule: %v", err)
	}
	if got := f.inj.Stats().CreateFails; got != 1 {
		t.Fatalf("CreateFails = %d, want 1", got)
	}
}

func TestNoRuleMeansNoFaults(t *testing.T) {
	f := newFixture(t, Config{Seed: 5, Rules: []Rule{{KeyContains: "nomatch", CreateFailRate: 1}}})
	spec := f.spec(t, "python:3.8")
	for i := 0; i < 20; i++ {
		if _, err := f.create(t, spec); err != nil {
			t.Fatalf("create %d failed with no matching rule: %v", i, err)
		}
	}
}

func TestBurstWindowMultipliesRate(t *testing.T) {
	// Base rate 0.05 multiplied by 20 inside the window = certain
	// failure; outside the window the seeded draws at 5% may or may
	// not fire, so only the window behaviour is asserted exactly.
	f := newFixture(t, Config{Seed: 9, Rules: []Rule{{
		CreateFailRate: 0.05,
		Bursts:         []Burst{{StartSec: 100, DurationSec: 50, Multiplier: 20}},
	}}})
	spec := f.spec(t, "python:3.8")
	f.sched.Sleep(110 * time.Second) // inside the window
	for i := 0; i < 10; i++ {
		if _, err := f.create(t, spec); err == nil {
			t.Fatalf("create %d succeeded inside a 100%% burst window", i)
		}
	}
	f.sched.Sleep(60 * time.Second) // past the window
	failsBefore := f.inj.Stats().CreateFails
	ok := 0
	for i := 0; i < 50; i++ {
		if _, err := f.create(t, spec); err == nil {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("every create failed after the burst window at a 5% base rate")
	}
	if f.inj.Stats().CreateFails-failsBefore > 15 {
		t.Fatalf("%d/50 fails after the window, want about 5%%", f.inj.Stats().CreateFails-failsBefore)
	}
}

func TestBurstDefaultMultiplier(t *testing.T) {
	b := Burst{StartSec: 0, DurationSec: 10}
	if !b.contains(5 * time.Second) {
		t.Fatal("burst should contain t=5s")
	}
	if b.contains(10 * time.Second) {
		t.Fatal("burst end is exclusive")
	}
	f := newFixture(t, Config{Seed: 1, Rules: []Rule{{
		CreateFailRate: 0.1,
		Bursts:         []Burst{{StartSec: 0, DurationSec: 1e6}}, // multiplier omitted
	}}})
	spec := f.spec(t, "python:3.8")
	// 0.1 * default 10 = certain failure.
	if _, err := f.create(t, spec); err == nil {
		t.Fatal("create succeeded; default burst multiplier should be 10")
	}
}

func TestCorruptionCaughtByHealthCheckOnce(t *testing.T) {
	f := newFixture(t, Config{Seed: 2, Rules: []Rule{{CorruptRate: 1}}})
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)
	c, err := f.create(t, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.exec(t, c, app); err != nil {
		t.Fatalf("corruption must be silent at exec time: %v", err)
	}
	if !f.inj.IsCorrupted(c) {
		t.Fatal("container not marked corrupted after exec at rate 1")
	}
	if f.inj.Stats().Corruptions != 1 {
		t.Fatalf("Corruptions = %d, want 1", f.inj.Stats().Corruptions)
	}
	if err := f.inj.HealthCheck(c); err == nil {
		t.Fatal("health check passed a corrupted container")
	}
	// The poison mark is consumed by the failing check (the container
	// is quarantined and stopped by the pool).
	if err := f.inj.HealthCheck(c); err != nil {
		t.Fatalf("second health check should pass: %v", err)
	}
}

func TestSlowStartInflatesBoot(t *testing.T) {
	slow := newFixture(t, Config{Seed: 4, Rules: []Rule{{SlowStartRate: 1, SlowStartFactor: 5}}})
	fast := newFixture(t, Config{Seed: 4, Rules: []Rule{}})
	spec := slow.spec(t, "python:3.8")
	start := slow.sched.Now()
	if _, err := slow.create(t, spec); err != nil {
		t.Fatal(err)
	}
	slowBoot := slow.sched.Now() - start
	fstart := fast.sched.Now()
	if _, err := fast.create(t, fast.spec(t, "python:3.8")); err != nil {
		t.Fatal(err)
	}
	fastBoot := fast.sched.Now() - fstart
	if slow.inj.Stats().SlowStarts != 1 {
		t.Fatalf("SlowStarts = %d, want 1", slow.inj.Stats().SlowStarts)
	}
	if slowBoot < 4*fastBoot {
		t.Fatalf("slow boot %v not ~5x the nominal %v", slowBoot, fastBoot)
	}
}

func TestExecCrashLeavesContainerAvailable(t *testing.T) {
	f := newFixture(t, Config{Seed: 6, Rules: []Rule{{ExecCrashRate: 1}}})
	spec := f.spec(t, "python:3.8")
	app := workload.QRApp(workload.Python)
	c, err := f.create(t, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.exec(t, c, app); err == nil {
		t.Fatal("exec should crash at rate 1")
	}
	if c.State() != container.Available {
		t.Fatalf("state after crashed exec = %v, want Available", c.State())
	}
	if f.inj.Stats().ExecCrashes != 1 {
		t.Fatalf("ExecCrashes = %d, want 1", f.inj.Stats().ExecCrashes)
	}
}
