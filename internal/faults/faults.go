// Package faults implements a deterministic, seedable fault injector
// for the container engine: the chaos-engineering half of the
// resilience story. The paper's Algorithms 1/2 assume pooled runtimes
// are always reusable; real engines fail creates (registry or resource
// exhaustion), crash mid-exec, hand out corrupted runtimes, and
// occasionally boot an order of magnitude slower than nominal. The
// injector models all four so the gateway's retry / circuit-breaker /
// quarantine machinery can be exercised reproducibly.
//
// Faults are configured per runtime key (substring match on the
// canonical key, first matching rule wins) with optional burst windows
// that multiply the base rates for a span of virtual time — modelling
// correlated failures such as a registry outage. All draws flow through
// seeded rng streams split per fault kind, so a whole chaos experiment
// replays byte-for-byte from one seed.
package faults

import (
	"fmt"
	"strings"
	"time"

	"hotc/internal/container"
	"hotc/internal/rng"
	"hotc/internal/simclock"
	"hotc/internal/workload"
)

// Burst is a window of virtual time during which a rule's fault rates
// are multiplied, modelling correlated failure episodes.
type Burst struct {
	// StartSec is the window start, in seconds of virtual time.
	StartSec float64 `json:"startSec"`
	// DurationSec is the window length in seconds.
	DurationSec float64 `json:"durationSec"`
	// Multiplier scales the rule's rates inside the window (default 10).
	Multiplier float64 `json:"multiplier,omitempty"`
}

// contains reports whether the virtual time t falls inside the window.
func (b Burst) contains(t simclock.Time) bool {
	start := time.Duration(b.StartSec * float64(time.Second))
	end := start + time.Duration(b.DurationSec*float64(time.Second))
	return t >= start && t < end
}

// Rule sets fault rates for the runtime keys it matches. Rates are
// probabilities in [0, 1] evaluated independently per operation.
type Rule struct {
	// KeyContains selects runtime keys by substring; empty matches
	// every key. The first matching rule wins.
	KeyContains string `json:"keyContains,omitempty"`
	// CreateFailRate fails container creation (after the boot delay),
	// modelling registry errors and resource exhaustion.
	CreateFailRate float64 `json:"createFailRate,omitempty"`
	// ExecCrashRate fails an execution at admission, modelling a crash
	// of the function process.
	ExecCrashRate float64 `json:"execCrashRate,omitempty"`
	// CorruptRate silently corrupts the container at exec time: the
	// execution succeeds but the runtime is poisoned and fails its next
	// pool health check.
	CorruptRate float64 `json:"corruptRate,omitempty"`
	// SlowStartRate inflates a create's boot latency by SlowStartFactor.
	SlowStartRate float64 `json:"slowStartRate,omitempty"`
	// SlowStartFactor multiplies the nominal boot cost on a slow-start
	// fault (default 5: a 5x latency spike).
	SlowStartFactor float64 `json:"slowStartFactor,omitempty"`
	// Bursts are windows during which all of this rule's rates are
	// multiplied.
	Bursts []Burst `json:"bursts,omitempty"`
}

// Config is the JSON-configurable injector specification, embeddable in
// scenario specs.
type Config struct {
	// Seed drives the injector's rng streams (0 is a valid fixed seed).
	Seed int64 `json:"seed,omitempty"`
	// Rules are evaluated first-match-wins against each runtime key.
	Rules []Rule `json:"rules"`
}

// Validate checks rates and windows.
func (c Config) Validate() error {
	for i, r := range c.Rules {
		for _, rate := range []struct {
			name string
			v    float64
		}{
			{"createFailRate", r.CreateFailRate},
			{"execCrashRate", r.ExecCrashRate},
			{"corruptRate", r.CorruptRate},
			{"slowStartRate", r.SlowStartRate},
		} {
			if rate.v < 0 || rate.v > 1 {
				return fmt.Errorf("faults: rule %d %s = %v out of [0, 1]", i, rate.name, rate.v)
			}
		}
		if r.SlowStartFactor < 0 {
			return fmt.Errorf("faults: rule %d slowStartFactor = %v is negative", i, r.SlowStartFactor)
		}
		for j, b := range r.Bursts {
			if b.StartSec < 0 || b.DurationSec <= 0 {
				return fmt.Errorf("faults: rule %d burst %d needs startSec >= 0 and durationSec > 0", i, j)
			}
			if b.Multiplier < 0 {
				return fmt.Errorf("faults: rule %d burst %d multiplier = %v is negative", i, j, b.Multiplier)
			}
		}
	}
	return nil
}

// Stats counts injected faults per kind.
type Stats struct {
	// CreateFails counts failed container creations.
	CreateFails int
	// ExecCrashes counts failed executions.
	ExecCrashes int
	// Corruptions counts silently poisoned containers.
	Corruptions int
	// SlowStarts counts inflated boots.
	SlowStarts int
}

// Total is the number of injected faults of any kind.
func (s Stats) Total() int {
	return s.CreateFails + s.ExecCrashes + s.Corruptions + s.SlowStarts
}

// Injector draws fault decisions against a Config. Plug it into an
// engine with Attach; its HealthCheck method slots into
// pool.Options.HealthCheck so corrupted runtimes are quarantined on
// acquire instead of being reused.
type Injector struct {
	rules []Rule
	now   func() simclock.Time
	eng   *container.Engine

	// Independent streams per fault kind: adding draws of one kind
	// never perturbs the sequence of another.
	create, exec, corrupt, slow *rng.Source

	corrupted map[string]bool
	stats     Stats
}

// New builds an injector for the config. now supplies virtual time for
// burst windows (pass the scheduler's Now).
func New(cfg Config, now func() simclock.Time) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if now == nil {
		return nil, fmt.Errorf("faults: New requires a clock")
	}
	root := rng.New(cfg.Seed)
	return &Injector{
		rules:     cfg.Rules,
		now:       now,
		create:    root.Split("create-fail"),
		exec:      root.Split("exec-crash"),
		corrupt:   root.Split("corrupt"),
		slow:      root.Split("slow-start"),
		corrupted: make(map[string]bool),
	}, nil
}

// Attach installs the injector into the engine's fault hooks. Any
// previously installed hooks are replaced.
func (in *Injector) Attach(eng *container.Engine) {
	if eng == nil {
		panic("faults: Attach requires an engine")
	}
	in.eng = eng
	eng.CreateHook = in.onCreate
	eng.ExecHook = in.onExec
	eng.StartDelayHook = in.startDelay
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// rule returns the first rule matching the key, or nil.
func (in *Injector) rule(key string) *Rule {
	for i := range in.rules {
		if in.rules[i].KeyContains == "" || strings.Contains(key, in.rules[i].KeyContains) {
			return &in.rules[i]
		}
	}
	return nil
}

// scale is the burst multiplier in effect for the rule right now.
func (in *Injector) scale(r *Rule) float64 {
	now := in.now()
	for _, b := range r.Bursts {
		if b.contains(now) {
			if b.Multiplier == 0 {
				return 10
			}
			return b.Multiplier
		}
	}
	return 1
}

// rate resolves one of a rule's base rates to the effective probability
// at the current virtual time, clamped to [0, 1].
func (in *Injector) rate(key string, pick func(*Rule) float64) float64 {
	r := in.rule(key)
	if r == nil {
		return 0
	}
	p := pick(r) * in.scale(r)
	if p > 1 {
		p = 1
	}
	return p
}

// onCreate is the engine CreateHook: fail creation at the effective
// create-fail rate.
func (in *Injector) onCreate(spec container.Spec) error {
	if in.create.Bernoulli(in.rate(string(spec.Key()), func(r *Rule) float64 { return r.CreateFailRate })) {
		in.stats.CreateFails++
		return fmt.Errorf("faults: injected create failure for %s", spec.Key())
	}
	return nil
}

// onExec is the engine ExecHook: crash the execution at the exec-crash
// rate, or silently poison the container at the corrupt rate.
func (in *Injector) onExec(c *container.Container, _ workload.App) error {
	key := string(c.Key())
	if in.exec.Bernoulli(in.rate(key, func(r *Rule) float64 { return r.ExecCrashRate })) {
		in.stats.ExecCrashes++
		return fmt.Errorf("faults: injected exec crash in %s", c.ID)
	}
	if in.corrupt.Bernoulli(in.rate(key, func(r *Rule) float64 { return r.CorruptRate })) {
		if !in.corrupted[c.ID] {
			in.corrupted[c.ID] = true
			in.stats.Corruptions++
		}
	}
	return nil
}

// startDelay is the engine StartDelayHook: inflate the boot cost at the
// slow-start rate.
func (in *Injector) startDelay(spec container.Spec) time.Duration {
	key := string(spec.Key())
	r := in.rule(key)
	if r == nil {
		return 0
	}
	if !in.slow.Bernoulli(in.rate(key, func(r *Rule) float64 { return r.SlowStartRate })) {
		return 0
	}
	in.stats.SlowStarts++
	factor := r.SlowStartFactor
	if factor <= 0 {
		factor = 5
	}
	if factor <= 1 || in.eng == nil {
		return 0
	}
	return time.Duration(float64(in.eng.StartCost(spec)) * (factor - 1))
}

// HealthCheck reports whether the container is fit for reuse; it slots
// into pool.Options.HealthCheck. A corrupted container fails exactly
// once — the pool quarantines (stops) it on failure, so the poison mark
// is consumed here.
func (in *Injector) HealthCheck(c *container.Container) error {
	if in.corrupted[c.ID] {
		delete(in.corrupted, c.ID)
		return fmt.Errorf("faults: container %s is corrupted", c.ID)
	}
	return nil
}

// Corrupt poisons a container directly (used by tests and targeted
// chaos experiments).
func (in *Injector) Corrupt(c *container.Container) {
	if !in.corrupted[c.ID] {
		in.corrupted[c.ID] = true
		in.stats.Corruptions++
	}
}

// IsCorrupted reports whether a container is currently poisoned.
func (in *Injector) IsCorrupted(c *container.Container) bool { return in.corrupted[c.ID] }
