package prefork

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func instantBoot() (*Watchdog, error) { return Start(nil) }

func get(t *testing.T, addr string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatalf("GET %s: %v", addr, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestWatchdogRefusesUntilSpecialized(t *testing.T) {
	w, err := Start(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if code, _ := get(t, w.Addr()); code != http.StatusServiceUnavailable {
		t.Fatalf("unspecialized watchdog answered %d, want 503", code)
	}
	if w.Specialized() {
		t.Fatal("watchdog claims specialized before Specialize")
	}
	w.Specialize(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		io.WriteString(rw, "specialized")
	}))
	if !w.Specialized() {
		t.Fatal("watchdog not specialized after Specialize")
	}
	if code, body := get(t, w.Addr()); code != http.StatusOK || !strings.Contains(body, "specialized") {
		t.Fatalf("specialized watchdog answered %d %q", code, body)
	}
}

// Stop must be deterministic: when it returns, the Serve goroutine has
// exited — no polling, no slack needed.
func TestWatchdogStopWaitsForServeGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	var wds []*Watchdog
	for i := 0; i < 8; i++ {
		w, err := Start(nil)
		if err != nil {
			t.Fatal(err)
		}
		wds = append(wds, w)
	}
	for _, w := range wds {
		w.Stop()
		w.Stop() // idempotent
	}
	// The accept loops are guaranteed gone; only scheduler noise may
	// remain, so poll briefly with zero tolerance for the 8 servers.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines after Stop: %d, baseline %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A Serve error that is not the clean ErrServerClosed must reach the
// caller's hook exactly once — closing the listener out from under the
// server forces one.
func TestWatchdogServeErrorReachesHook(t *testing.T) {
	errs := make(chan error, 1)
	w, err := Start(func(e error) { errs <- e })
	if err != nil {
		t.Fatal(err)
	}
	w.lis.Close() // yank the listener: Serve returns a non-ErrServerClosed error
	select {
	case e := <-errs:
		if e == nil {
			t.Fatal("nil serve error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve error never reached the hook")
	}
	w.Stop()
}

func TestPoolRefillTopsUpToSize(t *testing.T) {
	p := NewPool(Config{Size: 3, Boot: instantBoot})
	defer p.Stop()
	if got := p.TryAcquire(); got != nil {
		t.Fatal("empty pool handed out a watchdog")
	}
	p.Refill()
	waitIdle(t, p, 3)
	// Acquire one: pool reports 2 until the next Refill.
	w := p.TryAcquire()
	if w == nil {
		t.Fatal("filled pool refused TryAcquire")
	}
	defer w.Stop()
	if got := p.Idle(); got != 2 {
		t.Fatalf("idle after acquire = %d, want 2", got)
	}
	p.Refill()
	waitIdle(t, p, 3)
	// Refill at target is a no-op.
	p.Refill()
	if got := p.Idle(); got != 3 {
		t.Fatalf("idle after no-op refill = %d, want 3", got)
	}
}

// Refill must return without waiting for a single boot: the request
// path calls it inline.
func TestRefillNeverBlocksOnBoot(t *testing.T) {
	slowBoot := func() (*Watchdog, error) {
		time.Sleep(300 * time.Millisecond)
		return Start(nil)
	}
	p := NewPool(Config{Size: 4, Boot: slowBoot})
	defer p.Stop()
	start := time.Now()
	p.Refill()
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("Refill blocked for %v; must only spawn goroutines", d)
	}
	waitIdle(t, p, 4)
}

func TestPoolReapOldestFirst(t *testing.T) {
	var boots atomic.Int32
	p := NewPool(Config{Size: 4, Boot: func() (*Watchdog, error) {
		boots.Add(1)
		return Start(nil)
	}})
	defer p.Stop()
	p.Refill()
	waitIdle(t, p, 4)
	if got := p.Reap(2); got != 2 {
		t.Fatalf("Reap(2) = %d", got)
	}
	if got := p.Idle(); got != 2 {
		t.Fatalf("idle after reap = %d, want 2", got)
	}
	if got := p.Reap(10); got != 2 {
		t.Fatalf("Reap(10) on 2 idle = %d, want 2", got)
	}
	if got := p.Reap(1); got != 0 {
		t.Fatalf("Reap on empty pool = %d, want 0", got)
	}
}

// A boot that completes after Stop must not leak its watchdog, and a
// boot error must hit the error hook without corrupting the counts.
func TestPoolStopDiscardsLateBoots(t *testing.T) {
	release := make(chan struct{})
	p := NewPool(Config{Size: 2, Boot: func() (*Watchdog, error) {
		<-release
		return Start(nil)
	}})
	p.Refill()
	if got := p.Booting(); got != 2 {
		t.Fatalf("booting = %d, want 2", got)
	}
	close(release)
	p.Stop() // must wait out both boots and stop their watchdogs
	if got := p.Idle(); got != 0 {
		t.Fatalf("idle after Stop = %d", got)
	}
	if w := p.TryAcquire(); w != nil {
		t.Fatal("stopped pool handed out a watchdog")
	}
	p.Refill() // no-op on a stopped pool
	p.Stop()   // idempotent
}

func TestPoolBootErrorReachesHook(t *testing.T) {
	var errs atomic.Int32
	fail := fmt.Errorf("boom")
	p := NewPool(Config{
		Size:        2,
		Boot:        func() (*Watchdog, error) { return nil, fail },
		OnBootError: func(error) { errs.Add(1) },
	})
	defer p.Stop()
	p.Refill()
	deadline := time.Now().Add(2 * time.Second)
	for errs.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("boot errors seen: %d, want 2", errs.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.Booting(); got != 0 {
		t.Fatalf("booting stuck at %d after failed boots", got)
	}
}

func TestPoolIdleHookObservesChanges(t *testing.T) {
	var last atomic.Int32
	p := NewPool(Config{
		Size:   2,
		Boot:   instantBoot,
		OnIdle: func(n int) { last.Store(int32(n)) },
	})
	defer p.Stop()
	p.Refill()
	waitIdle(t, p, 2)
	if got := last.Load(); got != 2 {
		t.Fatalf("OnIdle last saw %d, want 2", got)
	}
	w := p.TryAcquire()
	if w == nil {
		t.Fatal("TryAcquire failed")
	}
	defer w.Stop()
	if got := last.Load(); got != 1 {
		t.Fatalf("OnIdle after acquire saw %d, want 1", got)
	}
}

// Hammer every pool operation concurrently under -race.
func TestPoolConcurrentChurn(t *testing.T) {
	p := NewPool(Config{Size: 4, Boot: instantBoot})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if w := p.TryAcquire(); w != nil {
					w.Specialize(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {}))
					w.Stop()
				}
				p.Refill()
				if j%10 == 0 {
					p.Reap(1)
				}
				p.Idle()
			}
		}()
	}
	wg.Wait()
	p.Stop()
	if got := p.Idle(); got != 0 {
		t.Fatalf("idle after churn+Stop = %d", got)
	}
}

func waitIdle(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for p.Idle() != want {
		if time.Now().After(deadline) {
			t.Fatalf("pool idle = %d, want %d", p.Idle(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
