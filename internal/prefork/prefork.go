// Package prefork implements the generic pre-forked watchdog pool
// behind the live gateway's fast cold path. The expensive,
// function-agnostic part of a watchdog boot — binding a loopback
// listener, getting an HTTP server's accept loop running, paying the
// generic runtime-init delay — happens here, ahead of any request.
// A cold start then collapses to *specialization*: swapping the
// function handler into an already-running server and paying only the
// function-specific share of init (the pool-of-pre-baked-generic-
// runtimes design of Lin & Glikson, arXiv:1903.12221).
//
// The package is mechanism only. The delay a generic boot pays, the
// handler a specialization installs, and the policy for when to refill
// or reap all belong to the caller (internal/faas/live); the pool just
// guarantees that refills never run on the caller's goroutine and that
// Stop is deterministic (every Serve goroutine has exited when Stop
// returns).
package prefork

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog is one pre-forked worker: an http.Server bound to a
// loopback port whose handler is swapped in at specialization time.
// Until then requests get 503 — a generic watchdog serves nobody.
type Watchdog struct {
	addr    string
	lis     net.Listener
	server  *http.Server
	handler atomic.Pointer[http.Handler]

	// done closes when the Serve goroutine has returned, which is what
	// makes Stop deterministic for goroutine-leak checks.
	done     chan struct{}
	stopOnce sync.Once
}

// Start boots a generic watchdog: listener bound, accept loop running,
// no handler installed. onServeErr, if non-nil, is called at most once
// with the error Serve returned — any error other than the expected
// http.ErrServerClosed after Stop. The previous design dropped that
// error on the floor inside an anonymous goroutine; surfacing it is
// what lets the gateway count watchdog accept-loop failures as
// resilience events.
func Start(onServeErr func(error)) (*Watchdog, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("prefork: watchdog listen: %w", err)
	}
	w := &Watchdog{
		addr: lis.Addr().String(),
		lis:  lis,
		done: make(chan struct{}),
	}
	w.server = &http.Server{Handler: http.HandlerFunc(w.dispatch)}
	go func() {
		err := w.server.Serve(lis)
		if err != nil && err != http.ErrServerClosed && onServeErr != nil {
			onServeErr(err)
		}
		close(w.done)
	}()
	return w, nil
}

// dispatch routes a request to the specialized handler, or refuses it
// when none is installed yet (a request racing specialization — the
// gateway never proxies to an unspecialized watchdog, but a stray
// client could).
func (w *Watchdog) dispatch(rw http.ResponseWriter, r *http.Request) {
	if h := w.handler.Load(); h != nil {
		(*h).ServeHTTP(rw, r)
		return
	}
	http.Error(rw, "prefork: watchdog not specialized", http.StatusServiceUnavailable)
}

// Specialize installs (or replaces) the watchdog's function handler.
// Safe to call while the server is accepting: the swap is one atomic
// pointer store.
func (w *Watchdog) Specialize(h http.Handler) {
	w.handler.Store(&h)
}

// Specialized reports whether a handler is installed.
func (w *Watchdog) Specialized() bool { return w.handler.Load() != nil }

// Addr is the watchdog's host:port.
func (w *Watchdog) Addr() string { return w.addr }

// Stop shuts the server down and waits for the Serve goroutine to
// exit. Idempotent; concurrent callers all block until the first
// Stop's work is done. Shutdown waits up to a second for in-flight
// requests, then the accept-loop exit is awaited unconditionally —
// after Stop returns, the watchdog owns no goroutines.
func (w *Watchdog) Stop() {
	w.stopOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		w.server.Shutdown(ctx)
	})
	<-w.done
}

// Config tunes a Pool.
type Config struct {
	// Size is the target number of idle generic watchdogs Refill tops
	// the pool up to.
	Size int
	// Boot creates one generic watchdog, paying the generic share of
	// cold start. It runs on a pool-owned goroutine, never the
	// caller's. Required.
	Boot func() (*Watchdog, error)
	// OnBoot, if set, is called after each successful generic boot
	// (refill accounting).
	OnBoot func()
	// OnBootError, if set, is called for each failed generic boot.
	OnBootError func(error)
	// OnIdle, if set, observes every idle-count change (gauge hookup).
	// Called with the pool lock held: it must not call back into the
	// pool and must be cheap (an atomic gauge store).
	OnIdle func(n int)
}

// Pool maintains a target number of idle generic watchdogs. TryAcquire
// pops one without blocking; Refill tops the pool back up on
// background goroutines. The request path therefore never waits on a
// generic boot: it either gets a ready watchdog or falls back to a
// full cold start while the refill proceeds concurrently.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	idle    []*Watchdog // oldest first; TryAcquire pops the tail
	booting int
	stopped bool
	// wg tracks refill goroutines so Stop can wait for them.
	wg sync.WaitGroup
}

// NewPool creates a pool. It does not boot anything: call Refill to
// populate it.
func NewPool(cfg Config) *Pool {
	if cfg.Boot == nil {
		panic("prefork: pool needs a Boot function")
	}
	if cfg.Size < 0 {
		cfg.Size = 0
	}
	return &Pool{cfg: cfg}
}

// TryAcquire pops an idle generic watchdog, or returns nil when none
// is ready (the caller falls back to a full cold boot). Never blocks
// on a boot.
func (p *Pool) TryAcquire() *Watchdog {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.idle)
	if n == 0 || p.stopped {
		return nil
	}
	w := p.idle[n-1]
	p.idle = p.idle[:n-1]
	p.notifyIdleLocked()
	return w
}

// Refill tops the pool up to its target size asynchronously: the
// deficit is computed under the lock, but every boot runs on its own
// pool-owned goroutine. Safe (and intended) to call from the request
// path right after TryAcquire — the call itself is a mutex and some
// goroutine spawns, never a boot.
func (p *Pool) Refill() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	deficit := p.cfg.Size - len(p.idle) - p.booting
	if deficit <= 0 {
		p.mu.Unlock()
		return
	}
	p.booting += deficit
	p.wg.Add(deficit)
	p.mu.Unlock()

	for i := 0; i < deficit; i++ {
		go p.bootOne()
	}
}

// bootOne runs one generic boot and pools the result — unless the pool
// stopped or overfilled while it was booting.
func (p *Pool) bootOne() {
	defer p.wg.Done()
	w, err := p.cfg.Boot()
	p.mu.Lock()
	if p.booting > 0 {
		p.booting--
	}
	if err != nil {
		p.mu.Unlock()
		if p.cfg.OnBootError != nil {
			p.cfg.OnBootError(err)
		}
		return
	}
	if p.stopped || len(p.idle) >= p.cfg.Size {
		p.mu.Unlock()
		w.Stop()
		return
	}
	p.idle = append(p.idle, w)
	p.notifyIdleLocked()
	p.mu.Unlock()
	if p.cfg.OnBoot != nil {
		p.cfg.OnBoot()
	}
}

// Idle reports the number of ready generic watchdogs.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Booting reports the number of generic boots in flight.
func (p *Pool) Booting() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.booting
}

// Reap stops up to n idle generics, oldest first, returning how many
// were actually stopped. The janitor uses this to shed generic memory
// under budget pressure; the watchdogs are stopped outside the pool
// lock, concurrently.
func (p *Pool) Reap(n int) int {
	if n <= 0 {
		return 0
	}
	p.mu.Lock()
	if n > len(p.idle) {
		n = len(p.idle)
	}
	doomed := append([]*Watchdog(nil), p.idle[:n]...)
	p.idle = append(p.idle[:0:0], p.idle[n:]...)
	p.notifyIdleLocked()
	p.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range doomed {
		wg.Add(1)
		go func(w *Watchdog) {
			defer wg.Done()
			w.Stop()
		}(w)
	}
	wg.Wait()
	return len(doomed)
}

// Stop tears the pool down: idle watchdogs are stopped concurrently,
// in-flight boots are waited out (they self-stop on completion), and
// no goroutine owned by the pool survives the call.
func (p *Pool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.stopped = true
	idle := p.idle
	p.idle = nil
	p.notifyIdleLocked()
	p.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range idle {
		wg.Add(1)
		go func(w *Watchdog) {
			defer wg.Done()
			w.Stop()
		}(w)
	}
	wg.Wait()
	p.wg.Wait()
}

// notifyIdleLocked reports the idle count to the observer. Caller
// holds p.mu.
func (p *Pool) notifyIdleLocked() {
	if p.cfg.OnIdle != nil {
		p.cfg.OnIdle(len(p.idle))
	}
}
