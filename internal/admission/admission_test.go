package admission

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Immediate admission under the cap, queue-full rejection past the
// per-tenant depth, and slot reuse after Done.
func TestBoundedQueueRejectsOverflow(t *testing.T) {
	q := New(Config{MaxInFlight: 2, QueueDepth: 1})

	t1, rej := q.Acquire(context.Background(), "a", time.Time{})
	if rej != nil {
		t.Fatalf("first acquire rejected: %v", rej)
	}
	t2, rej := q.Acquire(context.Background(), "a", time.Time{})
	if rej != nil {
		t.Fatalf("second acquire rejected: %v", rej)
	}

	// Third waits (depth 1). Fourth overflows the tenant queue.
	got := make(chan *Ticket, 1)
	go func() {
		tk, r := q.Acquire(context.Background(), "a", time.Time{})
		if r != nil {
			t.Errorf("queued acquire rejected: %v", r)
		}
		got <- tk
	}()
	waitFor(t, func() bool { return q.Depth() == 1 })

	_, rej = q.Acquire(context.Background(), "a", time.Time{})
	if rej == nil || rej.Reason != ReasonQueueFull {
		t.Fatalf("want queue_full rejection, got %v", rej)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("queue_full rejection needs an actionable Retry-After, got %v", rej.RetryAfter)
	}

	t1.Done()
	t3 := <-got
	if t3 == nil {
		t.Fatal("waiter not dispatched after Done")
	}
	t2.Done()
	t3.Done()

	st := q.Snapshot()
	if st.Admitted != 3 || st.Rejected[ReasonQueueFull] != 1 || st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("snapshot = %+v", st)
	}
}

// A queued request whose deadline passes before a slot frees is shed
// at dispatch, never handed capacity.
func TestDeadlineShedAtDispatch(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{MaxInFlight: 1, QueueDepth: 4, Now: clk.Now})

	t1, rej := q.Acquire(context.Background(), "a", time.Time{})
	if rej != nil {
		t.Fatal(rej)
	}

	deadline := clk.Now().Add(50 * time.Millisecond)
	res := make(chan *Rejection, 1)
	go func() {
		_, r := q.Acquire(context.Background(), "a", deadline)
		res <- r
	}()
	waitFor(t, func() bool { return q.Depth() == 1 })

	clk.Advance(time.Second) // deadline long gone
	t1.Done()                // frees the slot; dispatcher must shed, not admit

	r := <-res
	if r == nil || r.Reason != ReasonDeadline {
		t.Fatalf("want deadline shed, got %v", r)
	}
	if got := q.InFlight(); got != 0 {
		t.Fatalf("shed request took a slot: inFlight=%d", got)
	}
}

// A request arriving with its deadline already expired is refused
// before touching the queue.
func TestExpiredDeadlineRejectedOnArrival(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{MaxInFlight: 1, QueueDepth: 4, Now: clk.Now})
	_, rej := q.Acquire(context.Background(), "a", clk.Now().Add(-time.Millisecond))
	if rej == nil || rej.Reason != ReasonDeadline {
		t.Fatalf("want deadline rejection, got %v", rej)
	}
}

// Canceling a queued request's context withdraws it: the queue slot
// frees immediately and the dispatcher never sees it.
func TestContextCancelWithdrawsWaiter(t *testing.T) {
	q := New(Config{MaxInFlight: 1, QueueDepth: 4})
	t1, rej := q.Acquire(context.Background(), "a", time.Time{})
	if rej != nil {
		t.Fatal(rej)
	}

	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan *Rejection, 1)
	go func() {
		_, r := q.Acquire(ctx, "a", time.Time{})
		res <- r
	}()
	waitFor(t, func() bool { return q.Depth() == 1 })
	cancel()
	r := <-res
	if r == nil || r.Reason != ReasonCanceled {
		t.Fatalf("want canceled, got %v", r)
	}
	if q.Depth() != 0 {
		t.Fatalf("withdrawn waiter still occupies depth %d", q.Depth())
	}

	// The slot still works for the next arrival.
	t1.Done()
	t2, rej := q.Acquire(context.Background(), "b", time.Time{})
	if rej != nil {
		t.Fatal(rej)
	}
	t2.Done()
}

// Weighted round-robin: with weights a=2, b=1 and deep backlogs on
// both, dispatch order grants a two slots for every one of b's — one
// hot tenant cannot starve the other.
func TestWeightedFairDispatch(t *testing.T) {
	q := New(Config{
		MaxInFlight: 1,
		QueueDepth:  16,
		Weights:     map[string]int{"a": 2, "b": 1},
	})
	gate, rej := q.Acquire(context.Background(), "seed", time.Time{})
	if rej != nil {
		t.Fatal(rej)
	}

	type grant struct {
		tenant string
		ticket *Ticket
	}
	order := make(chan grant, 12)
	var wg sync.WaitGroup
	enqueue := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				tk, r := q.Acquire(context.Background(), tenant, time.Time{})
				if r != nil {
					t.Errorf("tenant %s rejected: %v", tenant, r)
					return
				}
				order <- grant{tenant, tk}
			}()
			// Serialize enqueue order within the tenant FIFO.
			waitForDepth(t, q, i+1, tenant)
		}
	}
	// Interleave arrivals: a's backlog first, then b's — arrival order
	// must not dictate dispatch order.
	enqueueBoth(t, q, enqueue, "a", 6, "b", 3)

	// Free the slot; each grant holds it briefly then releases,
	// letting us observe the full dispatch sequence.
	gate.Done()
	var seq []string
	for i := 0; i < 9; i++ {
		g := <-order
		seq = append(seq, g.tenant)
		g.ticket.Done()
	}
	wg.Wait()

	// Expect a,a,b repeating (cursor starts at a, weight 2).
	counts := map[string]int{}
	for i, tenant := range seq {
		counts[tenant]++
		// In every prefix, a should have at most 2x+2 of b's grants and
		// at least 2x-2: the 2:1 ratio holds throughout, not just at
		// the end.
		a, b := counts["a"], counts["b"]
		if a > 2*b+2 || b > a/2+2 {
			t.Fatalf("unfair prefix at %d: %v (a=%d b=%d)", i, seq, a, b)
		}
	}
	if counts["a"] != 6 || counts["b"] != 3 {
		t.Fatalf("lost grants: %v", counts)
	}
}

// Stop wakes every queued waiter with ReasonStopped and refuses new
// arrivals; in-flight tickets still release cleanly.
func TestStopDrainsWaiters(t *testing.T) {
	q := New(Config{MaxInFlight: 1, QueueDepth: 8})
	t1, rej := q.Acquire(context.Background(), "a", time.Time{})
	if rej != nil {
		t.Fatal(rej)
	}

	const waiters = 5
	var stopped atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, r := q.Acquire(context.Background(), "a", time.Time{})
			if r != nil && r.Reason == ReasonStopped {
				stopped.Add(1)
			}
		}()
	}
	waitFor(t, func() bool { return q.Depth() == waiters })

	q.Stop()
	wg.Wait()
	if got := stopped.Load(); got != waiters {
		t.Fatalf("want %d stopped rejections, got %d", waiters, got)
	}
	if _, r := q.Acquire(context.Background(), "a", time.Time{}); r == nil || r.Reason != ReasonStopped {
		t.Fatalf("post-stop acquire should be refused, got %v", r)
	}
	t1.Done() // must not panic or deadlock
}

// Hammer the queue from many goroutines with mixed cancels, deadlines
// and Stops — run under -race this is the churn soak. Invariant: every
// admitted ticket is balanced by Done and the final books are empty.
func TestConcurrentChurn(t *testing.T) {
	q := New(Config{MaxInFlight: 4, QueueDepth: 8})
	var admitted, refused atomic.Int64
	var wg sync.WaitGroup
	tenants := []string{"a", "b", "c"}
	for i := 0; i < 128; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			var deadline time.Time
			switch i % 4 {
			case 1:
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%7)*time.Millisecond)
				defer cancel()
			case 2:
				deadline = time.Now().Add(time.Duration(i%5) * time.Millisecond)
				ctx, cancel = context.WithDeadline(ctx, deadline)
				defer cancel()
			}
			tk, rej := q.Acquire(ctx, tenants[i%len(tenants)], deadline)
			if rej != nil {
				refused.Add(1)
				return
			}
			admitted.Add(1)
			time.Sleep(time.Duration(i%3) * time.Millisecond)
			tk.Done()
		}(i)
	}
	wg.Wait()
	if admitted.Load()+refused.Load() != 128 {
		t.Fatalf("lost requests: admitted=%d refused=%d", admitted.Load(), refused.Load())
	}
	if q.Depth() != 0 || q.InFlight() != 0 {
		t.Fatalf("books not empty: depth=%d inflight=%d", q.Depth(), q.InFlight())
	}
	st := q.Snapshot()
	var rejects uint64
	for _, v := range st.Rejected {
		rejects += v
	}
	if st.Admitted != uint64(admitted.Load()) || rejects != uint64(refused.Load()) {
		t.Fatalf("snapshot disagrees with callers: %+v vs admitted=%d refused=%d",
			st, admitted.Load(), refused.Load())
	}
}

// Retry-After grows with the backlog and stays within its clamp.
func TestRetryAfterTracksBacklog(t *testing.T) {
	clk := newFakeClock()
	q := New(Config{MaxInFlight: 1, QueueDepth: 2, Now: clk.Now})

	// Teach the estimator a 2s service time.
	tk, _ := q.Acquire(context.Background(), "a", time.Time{})
	clk.Advance(2 * time.Second)
	tk.Done()

	t1, _ := q.Acquire(context.Background(), "a", time.Time{})
	defer t1.Done()
	done := make(chan struct{}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go func() {
			_, r := q.Acquire(ctx, "a", time.Time{})
			if r != nil {
				done <- struct{}{}
			}
		}()
	}
	waitFor(t, func() bool { return q.Depth() == 2 })

	_, rej := q.Acquire(context.Background(), "a", time.Time{})
	if rej == nil || rej.Reason != ReasonQueueFull {
		t.Fatalf("want queue_full, got %v", rej)
	}
	// Backlog of 2 at ~2s each on one slot: at least 2 rounds (4s),
	// clamped at 60s.
	if rej.RetryAfter < 4*time.Second || rej.RetryAfter > time.Minute {
		t.Fatalf("RetryAfter = %v, want within [4s, 60s]", rej.RetryAfter)
	}
	cancel()
	<-done
	<-done
}

// Unlimited MaxInFlight admits everything immediately (admission
// effectively off), so the default gateway configuration costs one
// mutex hop and nothing else.
func TestUnlimitedAdmitsImmediately(t *testing.T) {
	q := New(Config{})
	for i := 0; i < 50; i++ {
		tk, rej := q.Acquire(context.Background(), "a", time.Time{})
		if rej != nil {
			t.Fatal(rej)
		}
		defer tk.Done()
	}
	if q.InFlight() != 50 || q.Depth() != 0 {
		t.Fatalf("inflight=%d depth=%d", q.InFlight(), q.Depth())
	}
}

// --- helpers ---

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitForDepth waits until tenant has n queued entries.
func waitForDepth(t *testing.T, q *Queue, n int, tenant string) {
	t.Helper()
	waitFor(t, func() bool {
		st := q.Snapshot()
		return st.Tenants[tenant].Queued == n
	})
}

// enqueueBoth fills tenant backlogs in a deterministic arrival order.
func enqueueBoth(t *testing.T, q *Queue, enqueue func(string, int), aName string, aN int, bName string, bN int) {
	t.Helper()
	enqueue(aName, aN)
	enqueue(bName, bN)
	waitFor(t, func() bool { return q.Depth() == aN+bN })
}
