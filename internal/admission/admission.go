// Package admission is the live gateway's overload-control tier: a
// per-function admission queue that polices concurrency before any
// warm-pool or boot work is committed.
//
// The failure mode it targets is saturation, not faults. Without it an
// unbounded burst on one function turns into one goroutine, one queued
// boot and one warm instance per request — for every tenant at once —
// until memory or the file-descriptor table gives out. The queue turns
// that collapse into a policed resource (the pool-based view of warm
// capacity): a bounded number of requests execute, a bounded number
// wait, and everything past that is refused immediately with enough
// information (a Retry-After estimate) for a well-behaved client to
// come back when capacity exists.
//
// Three mechanisms compose:
//
//   - Bounded queues. At most MaxInFlight requests are dispatched
//     concurrently; past that, arrivals wait in a per-tenant FIFO of at
//     most QueueDepth entries. Overflow is rejected instantly —
//     rejecting costs microseconds, queuing unboundedly costs the whole
//     node.
//
//   - Deadline-aware shedding. A queued request that cannot possibly be
//     served in time (its deadline passed while it waited) is shed at
//     dispatch instead of being handed a watchdog: the cheapest work is
//     work never started. Callers additionally pass their context, so a
//     client that disconnects mid-queue frees its slot immediately.
//
//   - Weighted fair dispatch across tenants. Dispatch cycles tenants in
//     weighted round-robin order (per-tenant FIFOs underneath), so a
//     tenant flooding its own queue delays itself, never its
//     neighbours: with equal weights, N active tenants each get 1/N of
//     the dispatch slots regardless of how deep any one backlog is.
//
// One Queue guards one function; the gateway owns one per shard and
// keys tenants off the X-Hotc-Tenant header (defaulting to the
// function name, so untagged traffic degrades to per-function
// fairness).
package admission

import (
	"fmt"
	"sync"
	"time"
)

// Reason classifies why a request was refused.
type Reason string

const (
	// ReasonQueueFull: the tenant's queue was at depth; the request was
	// never enqueued.
	ReasonQueueFull Reason = "queue_full"
	// ReasonDeadline: the request's deadline expired before dispatch.
	ReasonDeadline Reason = "deadline"
	// ReasonCanceled: the caller's context was canceled while queued
	// (client disconnect).
	ReasonCanceled Reason = "canceled"
	// ReasonStopped: the queue was stopped while the request waited.
	ReasonStopped Reason = "stopped"
)

// Rejection reports a refused request: the reason plus a Retry-After
// hint (zero when retrying is pointless, e.g. the queue stopped).
type Rejection struct {
	Reason     Reason
	RetryAfter time.Duration
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("admission: rejected (%s)", r.Reason)
}

// Config tunes a Queue.
type Config struct {
	// MaxInFlight caps concurrently dispatched requests. <= 0 means
	// unlimited: every Acquire admits immediately and no queue forms.
	MaxInFlight int
	// QueueDepth caps waiting requests per tenant. <= 0 with a finite
	// MaxInFlight means no queueing at all: requests beyond the
	// in-flight cap are rejected on arrival.
	QueueDepth int
	// Weights are the fair-dispatch quanta per tenant: a tenant with
	// weight 2 gets two dispatch slots per round where a weight-1
	// tenant gets one. Unlisted tenants get weight 1.
	Weights map[string]int
	// Now is the clock; nil means time.Now. Tests inject fakes.
	Now func() time.Time
	// OnQueueDepth, when set, is called (under the queue lock) whenever
	// the total number of waiting requests changes — the gauge hook.
	OnQueueDepth func(n int)
	// OnInFlight mirrors OnQueueDepth for the dispatched count.
	OnInFlight func(n int)
}

// Stats is a point-in-time snapshot of a queue's counters.
type Stats struct {
	// Admitted counts requests dispatched (immediately or after
	// waiting).
	Admitted uint64 `json:"admitted"`
	// Rejected counts refusals by reason.
	Rejected map[Reason]uint64 `json:"rejected,omitempty"`
	// InFlight and Queued are current occupancy.
	InFlight int `json:"inFlight"`
	Queued   int `json:"queued"`
	// Tenants breaks occupancy and goodput down per tenant.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's slice of a queue snapshot.
type TenantStats struct {
	Queued   int    `json:"queued"`
	Admitted uint64 `json:"admitted"`
}

// waiter states. Transitions happen under the queue mutex; resolution
// is signalled by closing ready, so the waiting goroutine reads
// outcome with a happens-before edge and no lock.
const (
	stateQueued = iota
	stateAdmitted
	stateShed    // deadline expired at dispatch
	stateStopped // queue stopped underneath the waiter
	stateRemoved // waiter withdrew (context canceled)
)

type waiter struct {
	tq       *tenantQ
	deadline time.Time // zero = none
	state    int
	ready    chan struct{}
}

// tenantQ is one tenant's FIFO plus its fair-dispatch credit.
type tenantQ struct {
	name     string
	weight   int
	credit   int
	q        []*waiter
	inRing   bool
	admitted uint64
}

// Queue is one function's admission controller. The zero value is not
// usable; construct with New.
type Queue struct {
	cfg Config

	mu       sync.Mutex
	tenants  map[string]*tenantQ
	ring     []*tenantQ // tenants with waiters, in dispatch order
	ringIdx  int
	inFlight int
	queued   int
	stopped  bool

	admitted uint64
	rejected map[Reason]uint64

	// ewmaService tracks smoothed per-request service time (dispatch to
	// Done), feeding the Retry-After estimate.
	ewmaService time.Duration
}

// New builds a Queue from cfg.
func New(cfg Config) *Queue {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Queue{
		cfg:      cfg,
		tenants:  make(map[string]*tenantQ),
		rejected: make(map[Reason]uint64),
	}
}

// Ticket is a granted admission. The holder must call Done exactly
// once when the request finishes (however it finishes), freeing the
// slot for the next waiter.
type Ticket struct {
	q         *Queue
	tq        *tenantQ
	dispatch  time.Time
	waited    time.Duration
	done      bool
	doneGuard sync.Mutex
}

// Waited reports how long the request queued before dispatch (zero
// for immediate admission).
func (t *Ticket) Waited() time.Duration { return t.waited }

// Done releases the slot and dispatches the next eligible waiter. Safe
// to call more than once; only the first call has effect.
func (t *Ticket) Done() {
	t.doneGuard.Lock()
	if t.done {
		t.doneGuard.Unlock()
		return
	}
	t.done = true
	t.doneGuard.Unlock()

	q := t.q
	q.mu.Lock()
	if q.inFlight > 0 {
		q.inFlight--
	}
	// Fold the observed service time into the Retry-After estimator.
	if d := q.cfg.Now().Sub(t.dispatch); d > 0 {
		if q.ewmaService == 0 {
			q.ewmaService = d
		} else {
			q.ewmaService = (q.ewmaService*4 + d) / 5
		}
	}
	if q.cfg.OnInFlight != nil {
		q.cfg.OnInFlight(q.inFlight)
	}
	q.dispatchLocked()
	q.mu.Unlock()
}

// Blocker is the canceling half of a context: Done and Err, which is
// all Acquire needs (and all tests must fake).
type Blocker interface {
	Done() <-chan struct{}
	Err() error
}

// Acquire asks for an execution slot for tenant. It returns a Ticket
// when admitted — possibly after blocking in the fair queue — or a
// Rejection when refused. deadline, when non-zero, sheds the request
// if it is still queued at that instant (the caller's ctx is expected
// to carry the same deadline, which is what actually wakes the
// waiter). ctx cancellation withdraws a queued request immediately.
func (q *Queue) Acquire(ctx Blocker, tenant string, deadline time.Time) (*Ticket, *Rejection) {
	now := q.cfg.Now()
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return nil, &Rejection{Reason: ReasonStopped}
	}
	if !deadline.IsZero() && now.After(deadline) {
		q.rejected[ReasonDeadline]++
		q.mu.Unlock()
		return nil, &Rejection{Reason: ReasonDeadline}
	}
	tq := q.tenantLocked(tenant)
	// Immediate admission: capacity free and nobody ahead of us. (If
	// waiters exist, even a free slot goes through the fair dispatcher
	// so a late arrival cannot jump the queue.)
	if (q.cfg.MaxInFlight <= 0 || q.inFlight < q.cfg.MaxInFlight) && q.queued == 0 {
		q.inFlight++
		q.admitted++
		tq.admitted++
		if q.cfg.OnInFlight != nil {
			q.cfg.OnInFlight(q.inFlight)
		}
		q.mu.Unlock()
		return &Ticket{q: q, tq: tq, dispatch: now}, nil
	}
	if len(tq.q) >= q.cfg.QueueDepth {
		q.rejected[ReasonQueueFull]++
		ra := q.retryAfterLocked()
		q.mu.Unlock()
		return nil, &Rejection{Reason: ReasonQueueFull, RetryAfter: ra}
	}
	w := &waiter{tq: tq, deadline: deadline, ready: make(chan struct{})}
	tq.q = append(tq.q, w)
	q.queued++
	if !tq.inRing {
		tq.inRing = true
		q.ring = append(q.ring, tq)
	}
	if q.cfg.OnQueueDepth != nil {
		q.cfg.OnQueueDepth(q.queued)
	}
	// A slot may have freed between our capacity check and the enqueue
	// bookkeeping (we held the lock throughout, but the queue may have
	// been non-empty with capacity available when a prior Done raced a
	// burst of arrivals). Run the dispatcher so nothing stalls.
	q.dispatchLocked()
	q.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
	case <-done:
		q.mu.Lock()
		if w.state == stateQueued {
			// Withdraw: unlink the entry so it neither occupies depth
			// nor reaches the dispatcher. O(QueueDepth) worst case,
			// which is bounded and tiny next to a wasted dispatch.
			w.state = stateRemoved
			for i, e := range tq.q {
				if e == w {
					tq.q = append(tq.q[:i], tq.q[i+1:]...)
					break
				}
			}
			if len(tq.q) == 0 && tq.inRing {
				for i, e := range q.ring {
					if e == tq {
						q.removeRingLocked(i)
						break
					}
				}
			}
			q.queued--
			if q.cfg.OnQueueDepth != nil {
				q.cfg.OnQueueDepth(q.queued)
			}
			reason := ReasonCanceled
			if !w.deadline.IsZero() && q.cfg.Now().After(w.deadline) {
				reason = ReasonDeadline
			}
			q.rejected[reason]++
			q.mu.Unlock()
			return nil, &Rejection{Reason: reason}
		}
		q.mu.Unlock()
		// The dispatcher resolved us in the same instant; honour its
		// outcome below (an admitted-but-canceled ticket is returned to
		// the caller, whose deferred Done releases it — the request
		// itself will fail fast on its dead context).
		<-w.ready
	}

	switch w.state {
	case stateAdmitted:
		doneAt := q.cfg.Now()
		return &Ticket{q: q, tq: tq, dispatch: doneAt, waited: doneAt.Sub(now)}, nil
	case stateShed:
		q.mu.Lock()
		ra := q.retryAfterLocked()
		q.mu.Unlock()
		return nil, &Rejection{Reason: ReasonDeadline, RetryAfter: ra}
	default: // stateStopped
		return nil, &Rejection{Reason: ReasonStopped}
	}
}

// tenantLocked resolves (lazily creating) a tenant's queue.
func (q *Queue) tenantLocked(name string) *tenantQ {
	tq := q.tenants[name]
	if tq == nil {
		weight := 1
		if w, ok := q.cfg.Weights[name]; ok && w > 0 {
			weight = w
		}
		tq = &tenantQ{name: name, weight: weight}
		q.tenants[name] = tq
	}
	return tq
}

// dispatchLocked moves waiters into flight while capacity lasts,
// cycling tenants in weighted round-robin order and shedding entries
// whose deadline already passed. Caller holds q.mu.
func (q *Queue) dispatchLocked() {
	for (q.cfg.MaxInFlight <= 0 || q.inFlight < q.cfg.MaxInFlight) && q.queued > 0 {
		w := q.nextLocked()
		if w == nil {
			return
		}
		q.queued--
		if q.cfg.OnQueueDepth != nil {
			q.cfg.OnQueueDepth(q.queued)
		}
		if !w.deadline.IsZero() && q.cfg.Now().After(w.deadline) {
			// Cheap shed: the client's deadline passed while it waited;
			// dispatching now would only burn a watchdog on an answer
			// nobody is waiting for.
			w.state = stateShed
			q.rejected[ReasonDeadline]++
			close(w.ready)
			continue
		}
		w.state = stateAdmitted
		q.inFlight++
		q.admitted++
		w.tq.admitted++
		if q.cfg.OnInFlight != nil {
			q.cfg.OnInFlight(q.inFlight)
		}
		close(w.ready)
	}
}

// nextLocked picks the next live waiter by weighted round-robin:
// the tenant under the cursor serves one entry per unit of credit,
// refilled to its weight when the cursor returns with credit spent.
// Withdrawn waiters are discarded in passing. Caller holds q.mu.
func (q *Queue) nextLocked() *waiter {
	for len(q.ring) > 0 {
		if q.ringIdx >= len(q.ring) {
			q.ringIdx = 0
		}
		tq := q.ring[q.ringIdx]
		if len(tq.q) == 0 {
			q.removeRingLocked(q.ringIdx)
			continue
		}
		if tq.credit <= 0 {
			tq.credit = tq.weight
		}
		tq.credit--
		w := tq.q[0]
		tq.q = tq.q[1:]
		if len(tq.q) == 0 {
			q.removeRingLocked(q.ringIdx)
		} else if tq.credit <= 0 {
			q.ringIdx++
		}
		return w
	}
	return nil
}

// removeRingLocked drops the tenant at ring position i, keeping the
// cursor on the element that slid into its place. Caller holds q.mu.
func (q *Queue) removeRingLocked(i int) {
	tq := q.ring[i]
	tq.inRing = false
	tq.credit = 0
	q.ring = append(q.ring[:i], q.ring[i+1:]...)
	if q.ringIdx > i || q.ringIdx >= len(q.ring) {
		if q.ringIdx > 0 {
			q.ringIdx--
		}
	}
}

// retryAfterLocked estimates when capacity will free up: the current
// backlog divided by the service rate the in-flight slots sustain,
// clamped to [1s, 60s] so the header is always actionable. Caller
// holds q.mu.
func (q *Queue) retryAfterLocked() time.Duration {
	est := q.ewmaService
	if est <= 0 {
		return time.Second
	}
	slots := q.cfg.MaxInFlight
	if slots <= 0 {
		slots = 1
	}
	// Rounds of service needed to drain the backlog plus our slot.
	rounds := q.queued/slots + 1
	ra := est * time.Duration(rounds)
	if ra < time.Second {
		ra = time.Second
	}
	if ra > time.Minute {
		ra = time.Minute
	}
	return ra
}

// Stop refuses all future Acquires and wakes every queued waiter with
// ReasonStopped. In-flight tickets remain valid; their Done calls
// still balance the books. Idempotent.
func (q *Queue) Stop() {
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return
	}
	q.stopped = true
	for _, tq := range q.ring {
		for _, w := range tq.q {
			if w.state != stateQueued {
				continue
			}
			w.state = stateStopped
			q.rejected[ReasonStopped]++
			close(w.ready)
		}
		tq.q = nil
		tq.inRing = false
		tq.credit = 0
	}
	q.ring = nil
	q.ringIdx = 0
	q.queued = 0
	if q.cfg.OnQueueDepth != nil {
		q.cfg.OnQueueDepth(0)
	}
	q.mu.Unlock()
}

// Snapshot returns the queue's counters and occupancy.
func (q *Queue) Snapshot() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Admitted: q.admitted,
		InFlight: q.inFlight,
		Queued:   q.queued,
	}
	if len(q.rejected) > 0 {
		st.Rejected = make(map[Reason]uint64, len(q.rejected))
		for k, v := range q.rejected {
			st.Rejected[k] = v
		}
	}
	for name, tq := range q.tenants {
		live := len(tq.q)
		if live == 0 && tq.admitted == 0 {
			continue
		}
		if st.Tenants == nil {
			st.Tenants = make(map[string]TenantStats)
		}
		st.Tenants[name] = TenantStats{Queued: live, Admitted: tq.admitted}
	}
	return st
}

// Depth reports the number of waiting requests.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// InFlight reports the number of dispatched, unfinished requests.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inFlight
}
