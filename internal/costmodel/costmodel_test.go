package costmodel

import (
	"testing"
	"testing/quick"
	"time"

	"hotc/internal/rng"
)

func TestProfiles(t *testing.T) {
	s := Server()
	p := EdgePi()
	if s.Name != "server" || p.Name != "edge-pi" {
		t.Fatal("profile names wrong")
	}
	// Paper §V.B: edge execution is ~10x server execution.
	if p.ExecScale < 8 || p.ExecScale > 12 {
		t.Fatalf("EdgePi ExecScale = %v, want ~10", p.ExecScale)
	}
	if s.TotalMemoryMB <= p.TotalMemoryMB {
		t.Fatal("server must have more memory than the Pi")
	}
	if s.CPUCores <= p.CPUCores {
		t.Fatal("server must have more cores than the Pi")
	}
}

func TestDefaultsAnchors(t *testing.T) {
	c := Defaults()
	// Fig. 15(a): ~0.7 MB per idle live container, <1% CPU for ten.
	if c.IdleContainerMemMB != 0.7 {
		t.Fatalf("IdleContainerMemMB = %v, want 0.7", c.IdleContainerMemMB)
	}
	if c.IdleContainerCPUPct*10 >= 1 {
		t.Fatalf("ten idle containers should cost <1%% CPU, got %v%%", c.IdleContainerCPUPct*10)
	}
	if c.ExecColdFactor <= 1 {
		t.Fatal("cold execution must be slower than warm")
	}
}

func TestScaling(t *testing.T) {
	server := New(Server())
	pi := New(EdgePi())
	if pi.EngineSetupCost() <= server.EngineSetupCost() {
		t.Fatal("engine setup should be slower on the Pi")
	}
	if pi.ExecCost(time.Second) != 10*time.Second {
		t.Fatalf("Pi exec of 1s = %v, want 10s", pi.ExecCost(time.Second))
	}
	if server.ExecCost(time.Second) != time.Second {
		t.Fatal("server exec scale must be identity")
	}
}

func TestPullUnpackProportionalToSize(t *testing.T) {
	m := New(Server())
	if m.PullCost(10) != 10*m.PullCost(1) {
		t.Fatal("pull cost not linear in size")
	}
	if m.UnpackCost(0) != 0 {
		t.Fatal("unpacking nothing should be free")
	}
	if m.PullCost(100) <= m.UnpackCost(100) {
		t.Fatal("pulling should cost more than unpacking (network vs disk)")
	}
}

func TestColdExecPenalty(t *testing.T) {
	m := New(Server())
	warm := m.ExecCost(time.Second)
	cold := m.ColdExecCost(time.Second)
	if cold <= warm {
		t.Fatal("cold exec must exceed warm exec")
	}
	// The penalty is a cache/TLB effect, small relative to init costs.
	if float64(cold) > 1.25*float64(warm) {
		t.Fatalf("cold penalty too large: %v vs %v", cold, warm)
	}
}

func TestJitterBounds(t *testing.T) {
	m := New(Server())
	src := rng.New(5)
	for i := 0; i < 1000; i++ {
		d := m.Jitter(100*time.Millisecond, func() float64 { return src.Norm(0, 1) })
		if d < 0 {
			t.Fatalf("negative jittered duration %v", d)
		}
	}
}

func TestJitterDisabled(t *testing.T) {
	c := Defaults()
	c.JitterFrac = 0
	m := NewWith(c, Server())
	if got := m.Jitter(time.Second, func() float64 { return 100 }); got != time.Second {
		t.Fatalf("disabled jitter changed duration: %v", got)
	}
	m2 := New(Server())
	if got := m2.Jitter(time.Second, nil); got != time.Second {
		t.Fatalf("nil sampler should be a no-op, got %v", got)
	}
}

func TestJitterExtremeSampleClamped(t *testing.T) {
	m := New(Server())
	// A -100 sigma draw must clamp rather than go negative.
	if d := m.Jitter(time.Second, func() float64 { return -100 }); d <= 0 {
		t.Fatalf("extreme negative sample produced %v", d)
	}
}

// Property: all stage costs are non-negative and monotone in profile
// scale factors.
func TestPropertyStageCostsNonNegative(t *testing.T) {
	f := func(execScale, initScale uint8, base uint16) bool {
		p := Server()
		p.ExecScale = 1 + float64(execScale%50)
		p.InitScale = 1 + float64(initScale%50)
		m := New(p)
		d := time.Duration(base) * time.Millisecond
		return m.ExecCost(d) >= d && m.InitCost(d) >= d &&
			m.ColdExecCost(d) >= m.ExecCost(d) &&
			m.PullCost(float64(base)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
