// Package costmodel is the single home for every latency and resource
// constant used by the simulated container and FaaS substrates. Each
// constant is anchored to a measurement reported in the HotC paper
// (CLUSTER 2021) and cited next to its definition, so every figure the
// benchmarks regenerate is traceable back to the text.
//
// The model decomposes a cold start into the stages the paper's §II.C
// and §III identify:
//
//	image pull -> image unpack -> engine setup (namespaces/cgroups/rootfs)
//	  -> network setup -> language runtime init -> application init
//
// and a request's end-to-end latency into the OpenFaaS pipeline stages
// of Fig. 5 (gateway forward, watchdog shim, function execution).
// Host profiles scale the stages: the paper evaluates a Dell T430
// server and a Raspberry Pi 3, with the Pi roughly 10x slower on
// function execution (§V.B).
package costmodel

import "time"

// Profile scales the stage costs for a class of host hardware.
type Profile struct {
	// Name identifies the profile in reports ("server", "edge-pi").
	Name string

	// ExecScale multiplies function execution time. Paper §V.B: "the
	// normal execution time of the same application prolongs more than
	// 10 times inside edge devices".
	ExecScale float64

	// InitScale multiplies language-runtime and application
	// initialisation time.
	InitScale float64

	// EngineScale multiplies container-engine operations (create,
	// start, stop, volume handling).
	EngineScale float64

	// NetScale multiplies network setup cost.
	NetScale float64

	// PullScale multiplies image pull/unpack cost (slower disk and
	// network on the edge device).
	PullScale float64

	// TotalMemoryMB is the host's physical memory: 64 GB on the T430,
	// 1 GB on the Pi 3 (§V.A).
	TotalMemoryMB float64

	// CPUCores is the number of cores: dual 10-core Xeon = 20 on the
	// server, 4 on the Pi (§V.A).
	CPUCores int

	// BaseMemMB and BaseCPUPct are the idle OS footprint used by the
	// Fig. 15 resource-monitoring experiment.
	BaseMemMB  float64
	BaseCPUPct float64
}

// Server models the paper's Dell PowerEdge T430 (dual 10-core Xeon
// E5-2640, 64 GB RAM; §V.A).
func Server() Profile {
	return Profile{
		Name:          "server",
		ExecScale:     1,
		InitScale:     1,
		EngineScale:   1,
		NetScale:      1,
		PullScale:     1,
		TotalMemoryMB: 64 * 1024,
		CPUCores:      20,
		BaseMemMB:     900,
		BaseCPUPct:    1.5,
	}
}

// EdgePi models the paper's Raspberry Pi 3 (quad-core BCM2837, 1 GB
// RAM; §V.A). Execution is ~10x the server (§V.B); init and network
// stages scale less steeply because they are partly I/O- and
// kernel-bound rather than compute-bound. The scales are calibrated so
// that the Fig. 8(b) experiment (image recognition in overlay-network
// containers on the Pi) reproduces the paper's 26.6%/20.6% execution
// time reductions under HotC.
func EdgePi() Profile {
	return Profile{
		Name:          "edge-pi",
		ExecScale:     10,
		InitScale:     3,
		EngineScale:   4,
		NetScale:      1.2,
		PullScale:     5,
		TotalMemoryMB: 1024,
		CPUCores:      4,
		BaseMemMB:     220,
		BaseCPUPct:    4,
	}
}

// Constants are the stage costs on the reference server profile. All
// other profiles are derived by scaling.
type Constants struct {
	// EngineSetup is the time to create namespaces, cgroups and a
	// writable rootfs layer for a new container, before any network or
	// runtime work. Anchor: Fig. 4(a) container launch time on the
	// local server, order 100 ms for a locally-stored image.
	EngineSetup time.Duration

	// EngineTeardown is the time to stop and remove a container.
	EngineTeardown time.Duration

	// PullPerMB is the registry download cost per MB of image layers
	// that are not cached locally. §III.B (Alibaba): image pull
	// dominates when images are remote; the paper's own testbed stores
	// images locally, so benches that mirror the paper use a warm
	// layer cache.
	PullPerMB time.Duration

	// UnpackPerMB is the decompress/extract cost per MB of layers.
	UnpackPerMB time.Duration

	// VolumeSetup is the cost of creating and mounting a fresh volume
	// (HotC assigns one volume per container; §IV.B "Used Container
	// Cleanup").
	VolumeSetup time.Duration

	// VolumeCleanup is the cost of wiping a used volume's files so the
	// container can be reused.
	VolumeCleanup time.Duration

	// ExecColdFactor multiplies the first execution in a fresh
	// container relative to warm execution, capturing cold caches and
	// TLB pressure (§IV.A: reuse "can also offer hot cache and less
	// TLB flushing"). This is deliberately small; the dominant cold
	// cost is initialisation, as Fig. 5 shows.
	ExecColdFactor float64

	// GatewayForward is the gateway proxy hop (Fig. 5 stages 1->2 and
	// 5->6); tens of microseconds to low milliseconds in OpenFaaS.
	GatewayForward time.Duration

	// WatchdogShim is the watchdog's stdin/stdout HTTP shim overhead
	// per request (Fig. 5 stages 2->3 pipe setup and 4->5 response
	// copy) once the runtime is warm.
	WatchdogShim time.Duration

	// WatchdogBoot is the one-time watchdog process start inside a
	// fresh container.
	WatchdogBoot time.Duration

	// DeltaApply is the cost of applying exec-time configuration
	// deltas (environment, command) when reusing a container that
	// matched only on the relaxed key — the §VII future-work extension
	// ("reuses an existing available or idle container with a similar
	// configuration and applies the changes to execute the function").
	DeltaApply time.Duration

	// JitterFrac is the relative standard deviation applied to every
	// stage sample, reproducing run-to-run noise without breaking
	// determinism (all jitter flows from seeded rng streams).
	JitterFrac float64

	// ZygoteEngineFactor scales engine setup when containers are forked
	// from a pre-initialised zygote instead of booted from scratch —
	// the SOCK approach of Oakes et al. (§VI: "a container system
	// optimized in kernel scalability bottlenecks to provide speedup
	// of the application and container initialization").
	ZygoteEngineFactor float64

	// RestorePerMB is the cost of restoring one MB of a process
	// snapshot — the checkpoint/restore approach of Replayable
	// Execution (Wang et al., §VI: "uses checkpointing and sharing of
	// memory among containers to speed up the startup times").
	RestorePerMB time.Duration

	// ContentionKneePct, when positive, enables the resource-contention
	// model: while the host's aggregate active CPU demand exceeds this
	// knee (in percent of one 0-100 scale), executions stretch
	// proportionally, reproducing the "network congestion and resource
	// competition contribute to a slight spike of latency" effect the
	// paper observes under bursts (§V.D). Zero disables the model,
	// which keeps the calibrated figure benches exact.
	ContentionKneePct float64

	// IdleContainerMemMB is the resident memory of one live idle
	// container. Anchor: Fig. 15(a), "memory usage increased by 0.7MB
	// for each individual live container".
	IdleContainerMemMB float64

	// IdleContainerCPUPct is the CPU overhead of one live idle
	// container. Anchor: Fig. 15(a), "CPU usage increased by less than
	// 1%" for ten live containers.
	IdleContainerCPUPct float64
}

// Defaults returns the reference constants for the server profile.
func Defaults() Constants {
	return Constants{
		EngineSetup:         110 * time.Millisecond,
		EngineTeardown:      45 * time.Millisecond,
		PullPerMB:           12 * time.Millisecond,
		UnpackPerMB:         4 * time.Millisecond,
		VolumeSetup:         6 * time.Millisecond,
		VolumeCleanup:       9 * time.Millisecond,
		ExecColdFactor:      1.08,
		GatewayForward:      1200 * time.Microsecond,
		WatchdogShim:        900 * time.Microsecond,
		WatchdogBoot:        28 * time.Millisecond,
		DeltaApply:          12 * time.Millisecond,
		ZygoteEngineFactor:  0.35,
		RestorePerMB:        2 * time.Millisecond,
		JitterFrac:          0.03,
		IdleContainerMemMB:  0.7,
		IdleContainerCPUPct: 0.08,
	}
}

// Model bundles constants with a host profile and answers stage-cost
// queries. A Model is immutable after construction and safe for
// concurrent readers.
type Model struct {
	C Constants
	P Profile
}

// New returns a Model over the given profile with default constants.
func New(p Profile) *Model {
	return &Model{C: Defaults(), P: p}
}

// NewWith returns a Model with explicit constants, for ablations.
func NewWith(c Constants, p Profile) *Model {
	return &Model{C: c, P: p}
}

func scale(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// EngineSetupCost is the namespace/cgroup/rootfs stage.
func (m *Model) EngineSetupCost() time.Duration {
	return scale(m.C.EngineSetup, m.P.EngineScale)
}

// EngineTeardownCost is the stop+remove stage.
func (m *Model) EngineTeardownCost() time.Duration {
	return scale(m.C.EngineTeardown, m.P.EngineScale)
}

// PullCost is the registry download time for sizeMB of uncached layers.
func (m *Model) PullCost(sizeMB float64) time.Duration {
	return scale(time.Duration(float64(m.C.PullPerMB)*sizeMB), m.P.PullScale)
}

// UnpackCost is the layer extraction time for sizeMB of layers.
func (m *Model) UnpackCost(sizeMB float64) time.Duration {
	return scale(time.Duration(float64(m.C.UnpackPerMB)*sizeMB), m.P.PullScale)
}

// VolumeSetupCost is the fresh-volume mount stage.
func (m *Model) VolumeSetupCost() time.Duration {
	return scale(m.C.VolumeSetup, m.P.EngineScale)
}

// VolumeCleanupCost is the used-volume wipe stage.
func (m *Model) VolumeCleanupCost() time.Duration {
	return scale(m.C.VolumeCleanup, m.P.EngineScale)
}

// InitCost scales a language-runtime or application initialisation
// duration for this host.
func (m *Model) InitCost(base time.Duration) time.Duration {
	return scale(base, m.P.InitScale)
}

// ExecCost scales a warm function execution duration for this host.
func (m *Model) ExecCost(base time.Duration) time.Duration {
	return scale(base, m.P.ExecScale)
}

// ColdExecCost is ExecCost with the first-run cache/TLB penalty.
func (m *Model) ColdExecCost(base time.Duration) time.Duration {
	return time.Duration(float64(m.ExecCost(base)) * m.C.ExecColdFactor)
}

// NetCost scales a network setup duration for this host.
func (m *Model) NetCost(base time.Duration) time.Duration {
	return scale(base, m.P.NetScale)
}

// GatewayForwardCost is one gateway proxy hop.
func (m *Model) GatewayForwardCost() time.Duration {
	return m.C.GatewayForward
}

// WatchdogShimCost is the per-request watchdog overhead.
func (m *Model) WatchdogShimCost() time.Duration {
	return m.C.WatchdogShim
}

// WatchdogBootCost is the one-time watchdog start in a fresh container.
func (m *Model) WatchdogBootCost() time.Duration {
	return scale(m.C.WatchdogBoot, m.P.EngineScale)
}

// DeltaApplyCost is the exec-time configuration adjustment stage used
// by relaxed-key reuse.
func (m *Model) DeltaApplyCost() time.Duration {
	return scale(m.C.DeltaApply, m.P.EngineScale)
}

// RestoreCost is the checkpoint-restore time for a snapshot of
// sizeMB.
func (m *Model) RestoreCost(sizeMB float64) time.Duration {
	return scale(time.Duration(float64(m.C.RestorePerMB)*sizeMB), m.P.PullScale)
}

// Jitterer applies the model's relative jitter to a duration using the
// supplied uniform sampler (a func returning N(0,1)-distributed
// values). It never returns a negative duration.
func (m *Model) Jitter(d time.Duration, norm func() float64) time.Duration {
	if m.C.JitterFrac <= 0 || norm == nil {
		return d
	}
	f := 1 + m.C.JitterFrac*norm()
	if f < 0.05 {
		f = 0.05
	}
	return time.Duration(float64(d) * f)
}
