// Package scenario runs declarative experiment specifications: a JSON
// document describing the hardware profile, runtime-management policy,
// deployed functions and workload, executed on the simulation
// substrate. This lets experiments be versioned, shared and replayed
// without writing Go:
//
//	{
//	  "name": "burst-study",
//	  "policy": "hotc",
//	  "profile": "server",
//	  "functions": [
//	    {"name": "qr", "image": "python:3.8", "app": "qr-python"}
//	  ],
//	  "workload": {"kind": "burst", "rounds": 18, "intervalSec": 30}
//	}
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hotc"
	"hotc/internal/workload"
)

// Spec is a runnable experiment description.
type Spec struct {
	// Name labels the run.
	Name string `json:"name"`
	// Profile is "server" (default) or "edge-pi".
	Profile string `json:"profile,omitempty"`
	// Policy is hotc|cold|keepalive|warmup|histogram (default hotc).
	Policy string `json:"policy,omitempty"`
	// Seed drives jitter (0 = noiseless).
	Seed int64 `json:"seed,omitempty"`
	// KeepAliveSec tunes the keepalive/warmup policies.
	KeepAliveSec float64 `json:"keepAliveSec,omitempty"`
	// ControlIntervalSec tunes HotC's control loop.
	ControlIntervalSec float64 `json:"controlIntervalSec,omitempty"`
	// Functions are the deployed functions; request class i maps to
	// Functions[i % len].
	Functions []FunctionSpec `json:"functions"`
	// Workload is the request schedule.
	Workload WorkloadSpec `json:"workload"`
	// Cluster, when present, runs the workload on a multi-host HotC
	// cluster instead of a single host (Policy is then ignored: every
	// node runs HotC).
	Cluster *ClusterSpec `json:"cluster,omitempty"`
	// Faults, when present, injects deterministic failures (failed
	// creates, exec crashes, corruption, slow starts) into the engine.
	// Single-host runs only.
	Faults *hotc.FaultsConfig `json:"faults,omitempty"`
	// Resilience, when present, arms the gateway's retry / circuit
	// breaker / fallback machinery. Single-host runs only.
	Resilience *ResilienceSpec `json:"resilience,omitempty"`
	// Sharing turns on inter-function container sharing: on a pool
	// miss an idle container of another function is re-keyed as a
	// zygote instead of paying a full cold start.
	Sharing bool `json:"sharing,omitempty"`
	// SharingIdleGraceSec keeps containers off the lending market until
	// they have been idle this many virtual seconds, so renters take
	// only genuine surplus instead of a busy function's working set.
	// Zero means any available container may be lent.
	SharingIdleGraceSec float64 `json:"sharingIdleGraceSec,omitempty"`
}

// ResilienceSpec is the JSON shape of hotc.ResilienceConfig.
type ResilienceSpec struct {
	// MaxAcquireRetries bounds acquire retries per request.
	MaxAcquireRetries int `json:"maxAcquireRetries,omitempty"`
	// RetryBackoffMs is the base retry delay in milliseconds.
	RetryBackoffMs float64 `json:"retryBackoffMs,omitempty"`
	// BackoffFactor grows the delay per attempt.
	BackoffFactor float64 `json:"backoffFactor,omitempty"`
	// BackoffMaxMs caps the delay.
	BackoffMaxMs float64 `json:"backoffMaxMs,omitempty"`
	// BackoffJitter spreads delays by the given fraction.
	BackoffJitter float64 `json:"backoffJitter,omitempty"`
	// ExecRetries bounds exec-failure fallbacks per request.
	ExecRetries int `json:"execRetries,omitempty"`
	// BreakerThreshold arms the per-key circuit breaker (0 = off).
	BreakerThreshold int `json:"breakerThreshold,omitempty"`
	// BreakerOpenSec is the breaker's open window in seconds.
	BreakerOpenSec float64 `json:"breakerOpenSec,omitempty"`
	// Defaults, when true, starts from hotc.DefaultResilience and lets
	// the other fields override it.
	Defaults bool `json:"defaults,omitempty"`
}

// config lowers the spec onto hotc.ResilienceConfig.
func (r ResilienceSpec) config() hotc.ResilienceConfig {
	cfg := hotc.ResilienceConfig{}
	if r.Defaults {
		cfg = hotc.DefaultResilience()
	}
	if r.MaxAcquireRetries != 0 {
		cfg.MaxAcquireRetries = r.MaxAcquireRetries
	}
	if r.RetryBackoffMs > 0 {
		cfg.RetryBackoff = time.Duration(r.RetryBackoffMs * float64(time.Millisecond))
	}
	if r.BackoffFactor > 0 {
		cfg.BackoffFactor = r.BackoffFactor
	}
	if r.BackoffMaxMs > 0 {
		cfg.BackoffMax = time.Duration(r.BackoffMaxMs * float64(time.Millisecond))
	}
	if r.BackoffJitter > 0 {
		cfg.BackoffJitter = r.BackoffJitter
	}
	if r.ExecRetries != 0 {
		cfg.ExecRetries = r.ExecRetries
	}
	if r.BreakerThreshold != 0 {
		cfg.BreakerThreshold = r.BreakerThreshold
	}
	if r.BreakerOpenSec > 0 {
		cfg.BreakerOpenFor = time.Duration(r.BreakerOpenSec * float64(time.Second))
	}
	return cfg
}

// ClusterSpec configures a multi-host run.
type ClusterSpec struct {
	// Nodes is the cluster size (default 3).
	Nodes int `json:"nodes,omitempty"`
	// Routing is round-robin|least-loaded|reuse-affinity (default
	// reuse-affinity).
	Routing string `json:"routing,omitempty"`
}

// FunctionSpec declares one function.
type FunctionSpec struct {
	// Name at the gateway.
	Name string `json:"name"`
	// Image reference; defaults to the app's image.
	Image string `json:"image,omitempty"`
	// Network mode (default bridge).
	Network string `json:"network,omitempty"`
	// Env entries (KEY=VALUE).
	Env []string `json:"env,omitempty"`
	// App is a built-in application name: qr-<lang>, random-<lang>,
	// v3, tfapi, cassandra. Mutually exclusive with Profile.
	App string `json:"app,omitempty"`
	// Profile is a custom application cost profile. Mutually exclusive
	// with App.
	Profile *workload.Profile `json:"appProfile,omitempty"`
	// MaxConcurrency caps simultaneous executions (0 = unlimited).
	MaxConcurrency int `json:"maxConcurrency,omitempty"`
}

// WorkloadSpec declares the request schedule.
type WorkloadSpec struct {
	// Kind is serial|parallel|linear|exp|burst|campus|csv.
	Kind string `json:"kind"`
	// Count is the request count (serial).
	Count int `json:"count,omitempty"`
	// Rounds is the round count (parallel/linear/exp/burst).
	Rounds int `json:"rounds,omitempty"`
	// Threads is the client thread count (parallel).
	Threads int `json:"threads,omitempty"`
	// Start and Step shape the linear pattern (defaults 2, +2).
	Start int `json:"start,omitempty"`
	Step  int `json:"step,omitempty"`
	// IntervalSec is the round interval (default 30).
	IntervalSec float64 `json:"intervalSec,omitempty"`
	// Decreasing reverses the exponential pattern.
	Decreasing bool `json:"decreasing,omitempty"`
	// Base/Factor/BurstRounds shape the burst pattern (defaults 8, 10,
	// [4 8 12 16]).
	Base        int   `json:"base,omitempty"`
	Factor      int   `json:"factor,omitempty"`
	BurstRounds []int `json:"burstRounds,omitempty"`
	// Minutes and Scale shape the campus trace.
	Minutes int     `json:"minutes,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	// File is the CSV schedule path (kind csv).
	File string `json:"file,omitempty"`
	// Parts compose a "mix" workload: each part is any non-mix pattern
	// whose requests are re-labelled with the part's class, then all
	// parts are merged onto one timeline. This models heterogeneous
	// tenants — e.g. a steady SLO-bound stream sharing the gateway
	// with an abusive burst.
	Parts []MixPart `json:"parts,omitempty"`
}

// MixPart is one component stream of a "mix" workload.
type MixPart struct {
	WorkloadSpec
	// Class labels every request of this part, mapping it onto
	// Functions[class % len(functions)].
	Class int `json:"class"`
}

// Parse reads a spec, rejecting unknown fields.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Spec) validate() error {
	if len(s.Functions) == 0 {
		return fmt.Errorf("scenario: spec needs at least one function")
	}
	seen := map[string]bool{}
	for i, fn := range s.Functions {
		if fn.Name == "" {
			return fmt.Errorf("scenario: function %d needs a name", i)
		}
		if seen[fn.Name] {
			return fmt.Errorf("scenario: duplicate function name %q", fn.Name)
		}
		seen[fn.Name] = true
		if fn.App == "" && fn.Profile == nil {
			return fmt.Errorf("scenario: function %q needs app or appProfile", fn.Name)
		}
		if fn.App != "" && fn.Profile != nil {
			return fmt.Errorf("scenario: function %q has both app and appProfile", fn.Name)
		}
	}
	if s.Workload.Kind == "" {
		return fmt.Errorf("scenario: workload kind is required")
	}
	if s.Cluster != nil && (s.Faults != nil || s.Resilience != nil) {
		return fmt.Errorf("scenario: faults and resilience are single-host only")
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	if s.SharingIdleGraceSec < 0 {
		return fmt.Errorf("scenario: sharingIdleGraceSec must be >= 0")
	}
	if s.SharingIdleGraceSec > 0 && !s.Sharing {
		return fmt.Errorf("scenario: sharingIdleGraceSec requires \"sharing\": true")
	}
	return nil
}

// resolveApp maps a built-in app name to its App.
func resolveApp(name string) (hotc.App, error) {
	switch {
	case strings.HasPrefix(name, "qr-"):
		return hotc.AppQR(strings.TrimPrefix(name, "qr-"))
	case strings.HasPrefix(name, "random-"):
		return hotc.AppRandomNumber(strings.TrimPrefix(name, "random-"))
	case name == "v3":
		return hotc.AppV3(), nil
	case name == "tfapi":
		return hotc.AppTFAPI(), nil
	case name == "cassandra":
		return hotc.AppCassandra(), nil
	default:
		return hotc.App{}, fmt.Errorf("scenario: unknown app %q (want qr-<lang>, random-<lang>, v3, tfapi, cassandra)", name)
	}
}

func (w WorkloadSpec) build(classes int, seed int64) (hotc.Workload, error) {
	interval := time.Duration(w.IntervalSec * float64(time.Second))
	if interval <= 0 {
		interval = 30 * time.Second
	}
	orDefault := func(v, d int) int {
		if v <= 0 {
			return d
		}
		return v
	}
	switch w.Kind {
	case "serial":
		return hotc.SerialWorkload(interval, orDefault(w.Count, 20)), nil
	case "parallel":
		return hotc.ParallelWorkload(orDefault(w.Threads, 10), orDefault(w.Rounds, 10), interval), nil
	case "linear":
		start := orDefault(w.Start, 2)
		step := w.Step
		if step == 0 {
			step = 2
		}
		return hotc.LinearWorkload(start, step, orDefault(w.Rounds, 10), interval), nil
	case "exp":
		return hotc.ExponentialWorkload(orDefault(w.Rounds, 7), interval, w.Decreasing), nil
	case "burst":
		bursts := w.BurstRounds
		if len(bursts) == 0 {
			bursts = []int{4, 8, 12, 16}
		}
		return hotc.BurstWorkload(orDefault(w.Base, 8), orDefault(w.Factor, 10),
			bursts, orDefault(w.Rounds, 18), interval), nil
	case "campus":
		scale := w.Scale
		if scale <= 0 {
			scale = 20
		}
		return hotc.CampusWorkload(seed, scale, orDefault(w.Minutes, 60), classes), nil
	case "mix":
		if len(w.Parts) == 0 {
			return nil, fmt.Errorf("scenario: mix workload needs parts")
		}
		var merged hotc.Workload
		for i, p := range w.Parts {
			if p.Kind == "mix" {
				return nil, fmt.Errorf("scenario: mix parts cannot nest")
			}
			part, err := p.WorkloadSpec.build(classes, seed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("scenario: mix part %d: %w", i, err)
			}
			for j := range part {
				part[j].Class = p.Class
			}
			merged = append(merged, part...)
		}
		sort.SliceStable(merged, func(a, b int) bool { return merged[a].At < merged[b].At })
		return merged, nil
	case "csv":
		if w.File == "" {
			return nil, fmt.Errorf("scenario: csv workload needs a file")
		}
		f, err := os.Open(w.File)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		defer f.Close()
		return hotc.ReadWorkloadCSV(f)
	default:
		return nil, fmt.Errorf("scenario: unknown workload kind %q", w.Kind)
	}
}

// Outcome is the result of a scenario run.
type Outcome struct {
	// Name echoes the spec name.
	Name string
	// Policy is the display name of the policy that ran.
	Policy string
	// Stats summarises the replay.
	Stats hotc.Stats
	// PerFunction breaks cold starts down by function.
	PerFunction map[string]FunctionOutcome
	// LiveContainers is the pool size at the end of the run
	// (single-host runs only).
	LiveContainers int
	// ServedByNode reports per-node request counts (cluster runs only).
	ServedByNode map[string]int
	// Faults counts the injected faults (zero when the spec has none).
	Faults hotc.FaultStats
	// Resilience snapshots the gateway's retry/breaker/fallback
	// counters by name (empty when nothing fired).
	Resilience map[string]int
}

// FunctionOutcome is the per-function breakdown.
type FunctionOutcome struct {
	Requests   int
	ColdStarts int
	MeanMS     float64
}

// Run executes the spec.
func (s *Spec) Run() (*Outcome, error) {
	if s.Cluster != nil {
		return s.runCluster()
	}
	cfg := hotc.Config{
		Profile:         hotc.Profile(orString(s.Profile, string(hotc.ProfileServer))),
		Policy:          hotc.Policy(orString(s.Policy, string(hotc.PolicyHotC))),
		Seed:            s.Seed,
		KeepAliveWindow: time.Duration(s.KeepAliveSec * float64(time.Second)),
		ControlInterval: time.Duration(s.ControlIntervalSec * float64(time.Second)),
		LocalImages:     true,
		Faults:          s.Faults,
		EnableSharing:   s.Sharing,
		ShareIdleGrace:  time.Duration(s.SharingIdleGraceSec * float64(time.Second)),
	}
	if s.Resilience != nil {
		rc := s.Resilience.config()
		cfg.Resilience = &rc
	}
	sim, err := hotc.NewSimulation(cfg)
	if err != nil {
		return nil, err
	}
	defer sim.Close()

	names := make([]string, len(s.Functions))
	for i, fn := range s.Functions {
		var app hotc.App
		if fn.Profile != nil {
			app, err = fn.Profile.App()
		} else {
			app, err = resolveApp(fn.App)
		}
		if err != nil {
			return nil, err
		}
		image := fn.Image
		if image == "" {
			image = app.Image
		}
		err = sim.Deploy(hotc.FunctionSpec{
			Name: fn.Name,
			Runtime: hotc.Runtime{
				Image:   image,
				Network: fn.Network,
				Env:     fn.Env,
			},
			App:            app,
			MaxConcurrency: fn.MaxConcurrency,
		})
		if err != nil {
			return nil, err
		}
		names[i] = fn.Name
	}

	w, err := s.Workload.build(len(names), s.Seed)
	if err != nil {
		return nil, err
	}
	results, err := sim.Replay(w, func(c int) string { return names[c%len(names)] })
	if err != nil {
		return nil, err
	}

	out := &Outcome{
		Name:           s.Name,
		Policy:         sim.PolicyName(),
		Stats:          hotc.Summarize(results),
		PerFunction:    make(map[string]FunctionOutcome),
		LiveContainers: sim.LiveContainers(),
		Faults:         sim.FaultStats(),
		Resilience:     sim.ResilienceCounters(),
	}
	sums := map[string]float64{}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		fo := out.PerFunction[r.Function]
		fo.Requests++
		if !r.Reused {
			fo.ColdStarts++
		}
		sums[r.Function] += float64(r.Latency) / float64(time.Millisecond)
		out.PerFunction[r.Function] = fo
	}
	for name, fo := range out.PerFunction {
		if fo.Requests > 0 {
			fo.MeanMS = sums[name] / float64(fo.Requests)
			out.PerFunction[name] = fo
		}
	}
	return out, nil
}

// runCluster executes the spec on a multi-host cluster.
func (s *Spec) runCluster() (*Outcome, error) {
	cs, err := hotc.NewClusterSimulation(hotc.ClusterConfig{
		Nodes:           s.Cluster.Nodes,
		Profile:         hotc.Profile(orString(s.Profile, string(hotc.ProfileServer))),
		Routing:         hotc.Routing(orString(s.Cluster.Routing, string(hotc.RoutingReuseAffinity))),
		Seed:            s.Seed,
		ControlInterval: time.Duration(s.ControlIntervalSec * float64(time.Second)),
		LocalImages:     true,
	})
	if err != nil {
		return nil, err
	}
	defer cs.Close()

	names := make([]string, len(s.Functions))
	for i, fn := range s.Functions {
		var app hotc.App
		if fn.Profile != nil {
			app, err = fn.Profile.App()
		} else {
			app, err = resolveApp(fn.App)
		}
		if err != nil {
			return nil, err
		}
		image := fn.Image
		if image == "" {
			image = app.Image
		}
		err = cs.Deploy(hotc.FunctionSpec{
			Name:    fn.Name,
			Runtime: hotc.Runtime{Image: image, Network: fn.Network, Env: fn.Env},
			App:     app,
		})
		if err != nil {
			return nil, err
		}
		names[i] = fn.Name
	}

	w, err := s.Workload.build(len(names), s.Seed)
	if err != nil {
		return nil, err
	}
	results, err := cs.Replay(w, func(c int) string { return names[c%len(names)] })
	if err != nil {
		return nil, err
	}

	out := &Outcome{
		Name:         s.Name,
		Policy:       fmt.Sprintf("hotc-cluster(%d nodes)", len(cs.NodeNames())),
		Stats:        hotc.SummarizeCluster(results),
		PerFunction:  make(map[string]FunctionOutcome),
		ServedByNode: cs.ServedByNode(),
	}
	sums := map[string]float64{}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		fo := out.PerFunction[r.Function]
		fo.Requests++
		if !r.Reused {
			fo.ColdStarts++
		}
		sums[r.Function] += float64(r.Latency) / float64(time.Millisecond)
		out.PerFunction[r.Function] = fo
	}
	for name, fo := range out.PerFunction {
		if fo.Requests > 0 {
			fo.MeanMS = sums[name] / float64(fo.Requests)
			out.PerFunction[name] = fo
		}
	}
	return out, nil
}

func orString(v, d string) string {
	if v == "" {
		return d
	}
	return v
}
