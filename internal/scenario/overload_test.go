package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// The shipped overload scenario's point is tenant isolation: an
// abusive tenant flooding its concurrency-capped function must not
// take the steady SLO-bound tenant down with it. The steady stream
// has to complete (>= 95% of its 60 requests — in the deterministic
// sim it is all of them) at a mean far below the flooded tenant's.
func TestSaturationOverloadProtectsSteadyTenant(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "scenarios", "saturation-overload.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}

	steady, ok := out.PerFunction["steady"]
	if !ok {
		t.Fatalf("no steady tenant in outcome: %+v", out.PerFunction)
	}
	const want = 60 // the serial part's count
	if steady.Requests < want*95/100 {
		t.Fatalf("steady tenant completed %d/%d requests, want >= 95%%", steady.Requests, want)
	}
	abusive := out.PerFunction["burst"]
	if abusive.Requests == 0 {
		t.Fatal("burst tenant produced no load")
	}
	// The steady tenant must be isolated from the flood: its mean stays
	// in warm-request territory while the flooded function queues
	// behind its own cap.
	if steady.MeanMS > 200 {
		t.Fatalf("steady tenant mean = %.1fms: the burst tenant's flood leaked into it", steady.MeanMS)
	}
	if steady.MeanMS >= abusive.MeanMS {
		t.Fatalf("steady mean %.1fms >= abusive mean %.1fms: no isolation visible", steady.MeanMS, abusive.MeanMS)
	}
}

// The mix workload keeps each part's class and merges onto one
// sorted timeline; nesting and empty parts are spec errors.
func TestMixWorkloadBuild(t *testing.T) {
	w := WorkloadSpec{Kind: "mix", Parts: []MixPart{
		{Class: 0, WorkloadSpec: WorkloadSpec{Kind: "serial", Count: 5, IntervalSec: 10}},
		{Class: 1, WorkloadSpec: WorkloadSpec{Kind: "serial", Count: 3, IntervalSec: 15}},
	}}
	reqs, err := w.build(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 8 {
		t.Fatalf("merged %d requests, want 8", len(reqs))
	}
	byClass := map[int]int{}
	for i, r := range reqs {
		byClass[r.Class]++
		if i > 0 && reqs[i-1].At > r.At {
			t.Fatalf("merged schedule out of order at %d: %v > %v", i, reqs[i-1].At, r.At)
		}
	}
	if byClass[0] != 5 || byClass[1] != 3 {
		t.Fatalf("class split = %v, want 5/3", byClass)
	}

	if _, err := (WorkloadSpec{Kind: "mix"}).build(1, 0); err == nil {
		t.Fatal("empty mix accepted")
	}
	nested := WorkloadSpec{Kind: "mix", Parts: []MixPart{
		{WorkloadSpec: WorkloadSpec{Kind: "mix"}},
	}}
	if _, err := nested.build(1, 0); err == nil {
		t.Fatal("nested mix accepted")
	}
}
