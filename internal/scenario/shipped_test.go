package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedScenarios parses and runs every spec in the repository's
// scenarios/ directory, so the shipped cookbook can never rot.
func TestShippedScenarios(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading scenarios dir: %v", err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected a cookbook of specs, found %d", len(entries))
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			spec, err := Parse(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			out, err := spec.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if out.Stats.Requests == 0 {
				t.Fatal("scenario produced no requests")
			}
			if out.Stats.Requests != out.Stats.ColdStarts+out.Stats.Reused {
				t.Fatalf("stats inconsistent: %+v", out.Stats)
			}
			for name, fo := range out.PerFunction {
				if fo.Requests > 0 && fo.MeanMS <= 0 {
					t.Fatalf("function %s has requests but zero mean", name)
				}
			}
		})
	}
}
