package scenario

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"hotc"
)

const minimalSpec = `{
  "name": "serial-study",
  "policy": "hotc",
  "functions": [{"name": "qr", "app": "qr-python"}],
  "workload": {"kind": "serial", "count": 10, "intervalSec": 30}
}`

func TestParseAndRunMinimal(t *testing.T) {
	spec, err := Parse([]byte(minimalSpec))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Name != "serial-study" || out.Policy != "hotc" {
		t.Fatalf("outcome header = %+v", out)
	}
	if out.Stats.Requests != 10 || out.Stats.ColdStarts != 1 {
		t.Fatalf("stats = %+v", out.Stats)
	}
	fo := out.PerFunction["qr"]
	if fo.Requests != 10 || fo.ColdStarts != 1 || fo.MeanMS <= 0 {
		t.Fatalf("per-function = %+v", fo)
	}
	if out.LiveContainers != 1 {
		t.Fatalf("live = %d", out.LiveContainers)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"functions":[],"workload":{"kind":"serial"}}`,
		`{"functions":[{"name":"","app":"qr-go"}],"workload":{"kind":"serial"}}`,
		`{"functions":[{"name":"x"}],"workload":{"kind":"serial"}}`,
		`{"functions":[{"name":"x","app":"qr-go","appProfile":{"name":"y","image":"a","language":"go","execMs":1}}],"workload":{"kind":"serial"}}`,
		`{"functions":[{"name":"x","app":"qr-go"},{"name":"x","app":"qr-go"}],"workload":{"kind":"serial"}}`,
		`{"functions":[{"name":"x","app":"qr-go"}],"workload":{}}`,
		`{"functions":[{"name":"x","app":"qr-go"}],"workload":{"kind":"serial"},"bogus":1}`,
	}
	for i, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("case %d accepted: %s", i, in)
		}
	}
}

func TestRunErrors(t *testing.T) {
	run := func(spec string) error {
		s, err := Parse([]byte(spec))
		if err != nil {
			t.Fatalf("parse: %v (%s)", err, spec)
		}
		_, err = s.Run()
		return err
	}
	// Unknown app.
	if err := run(`{"functions":[{"name":"x","app":"teleport"}],"workload":{"kind":"serial"}}`); err == nil {
		t.Error("unknown app accepted")
	}
	// Unknown policy.
	if err := run(`{"policy":"magic","functions":[{"name":"x","app":"qr-go"}],"workload":{"kind":"serial"}}`); err == nil {
		t.Error("unknown policy accepted")
	}
	// Unknown workload kind.
	if err := run(`{"functions":[{"name":"x","app":"qr-go"}],"workload":{"kind":"warp"}}`); err == nil {
		t.Error("unknown workload accepted")
	}
	// Unknown image.
	if err := run(`{"functions":[{"name":"x","app":"qr-go","image":"nope:1"}],"workload":{"kind":"serial"}}`); err == nil {
		t.Error("unknown image accepted")
	}
	// csv without file.
	if err := run(`{"functions":[{"name":"x","app":"qr-go"}],"workload":{"kind":"csv"}}`); err == nil {
		t.Error("csv without file accepted")
	}
}

func TestCustomProfileFunction(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "name": "custom",
	  "policy": "cold",
	  "functions": [{
	    "name": "api",
	    "appProfile": {"name":"api","image":"node:10","language":"node",
	                   "appInitMs":150,"execMs":30,"cpuPct":4,"memMB":50}
	  }],
	  "workload": {"kind": "serial", "count": 3, "intervalSec": 10}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.ColdStarts != 3 {
		t.Fatalf("cold policy should cold-start all: %+v", out.Stats)
	}
}

func TestCSVWorkload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := hotc.SerialWorkload(1000, 5)
	if err := hotc.WriteWorkloadCSV(f, w); err != nil {
		t.Fatal(err)
	}
	f.Close()

	spec, err := Parse([]byte(`{
	  "functions": [{"name": "qr", "app": "qr-go"}],
	  "workload": {"kind": "csv", "file": "` + path + `"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Requests != 5 {
		t.Fatalf("requests = %d", out.Stats.Requests)
	}
}

func TestMultiFunctionClassMapping(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "functions": [
	    {"name": "a", "app": "qr-python"},
	    {"name": "b", "app": "qr-node"}
	  ],
	  "workload": {"kind": "parallel", "threads": 2, "rounds": 3, "intervalSec": 30}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.PerFunction["a"].Requests != 3 || out.PerFunction["b"].Requests != 3 {
		t.Fatalf("per-function = %+v", out.PerFunction)
	}
}

func TestClusterScenario(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "name": "mini-cluster",
	  "cluster": {"nodes": 3, "routing": "reuse-affinity"},
	  "functions": [{"name": "svc", "app": "qr-python"}],
	  "workload": {"kind": "serial", "count": 9, "intervalSec": 30}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Requests != 9 {
		t.Fatalf("requests = %d", out.Stats.Requests)
	}
	if len(out.ServedByNode) != 3 {
		t.Fatalf("served by node = %v", out.ServedByNode)
	}
	// Affinity routing: only the first request cold-starts.
	if out.Stats.ColdStarts != 1 {
		t.Fatalf("cold = %d", out.Stats.ColdStarts)
	}
	if out.Policy == "" {
		t.Fatal("empty policy label")
	}
}

func TestClusterScenarioBadRouting(t *testing.T) {
	spec, err := Parse([]byte(`{
	  "cluster": {"routing": "warp"},
	  "functions": [{"name": "svc", "app": "qr-python"}],
	  "workload": {"kind": "serial"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Run(); err == nil {
		t.Fatal("bad routing accepted")
	}
}

func TestResilienceSpecLowering(t *testing.T) {
	// Defaults alone reproduce hotc.DefaultResilience.
	if got := (ResilienceSpec{Defaults: true}).config(); got != hotc.DefaultResilience() {
		t.Fatalf("defaults lowering = %+v", got)
	}
	// Overrides win over defaults; unset fields keep the default.
	got := ResilienceSpec{Defaults: true, BreakerThreshold: 9, RetryBackoffMs: 250}.config()
	want := hotc.DefaultResilience()
	want.BreakerThreshold = 9
	want.RetryBackoff = 250 * time.Millisecond
	if got != want {
		t.Fatalf("override lowering = %+v, want %+v", got, want)
	}
	// Without Defaults only the set fields are non-zero.
	bare := ResilienceSpec{ExecRetries: 1}.config()
	if bare.ExecRetries != 1 || bare.MaxAcquireRetries != 0 || bare.BreakerThreshold != 0 {
		t.Fatalf("bare lowering = %+v", bare)
	}
}

func TestFaultSpecValidation(t *testing.T) {
	// A cluster spec cannot carry faults or resilience knobs.
	bad := `{"functions":[{"name":"x","app":"qr-go"}],"workload":{"kind":"serial"},
		"cluster":{"nodes":2},"faults":{"rules":[{"createFailRate":0.1}]}}`
	if _, err := Parse([]byte(bad)); err == nil {
		t.Error("cluster+faults accepted")
	}
	// Invalid fault rates are rejected at parse time.
	bad = `{"functions":[{"name":"x","app":"qr-go"}],"workload":{"kind":"serial"},
		"faults":{"rules":[{"createFailRate":1.5}]}}`
	if _, err := Parse([]byte(bad)); err == nil {
		t.Error("out-of-range fault rate accepted")
	}
}
