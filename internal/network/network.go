// Package network models container network modes and their setup cost
// during container boot, reproducing the relationships the paper
// measures in Fig. 4(c):
//
//   - single host: bridge and host mode cost about the same as no
//     network at all, while container mode (joining an existing proxy
//     container's namespace) makes startup roughly half as expensive
//     because no new network namespace is booted;
//   - multi host: overlay and routing networks, which register with a
//     distributed store and program tunnels/routes, cost up to 23x the
//     host-mode startup.
package network

import (
	"fmt"
	"strings"
	"time"

	"hotc/internal/costmodel"
)

// Mode enumerates the network configurations from Fig. 4(c).
type Mode int

const (
	// None gives the container no network (loopback only).
	None Mode = iota
	// Bridge attaches a veth pair to the docker0-style bridge with NAT.
	// This is the default mode, and what the paper calls NAT in §V.B.
	Bridge
	// Host shares the host network namespace.
	Host
	// Container joins another container's network namespace (the
	// "proxy container" pattern; cheapest startup in Fig. 4(c)).
	Container
	// Overlay is a multi-host VXLAN overlay requiring registration and
	// tunnel initialisation (most expensive in Fig. 4(c)).
	Overlay
	// Routing is a multi-host routed network (BGP-style route
	// programming), slightly cheaper than overlay.
	Routing
)

// Modes lists every mode in display order.
func Modes() []Mode { return []Mode{None, Bridge, Host, Container, Overlay, Routing} }

// String returns the mode's canonical name.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Bridge:
		return "bridge"
	case Host:
		return "host"
	case Container:
		return "container"
	case Overlay:
		return "overlay"
	case Routing:
		return "routing"
	default:
		return fmt.Sprintf("network.Mode(%d)", int(m))
	}
}

// MultiHost reports whether the mode spans hosts (overlay/routing).
func (m Mode) MultiHost() bool { return m == Overlay || m == Routing }

// Parse maps a config network string to a Mode. "container:<peer>"
// returns the peer container name. "nat" is accepted as an alias for
// bridge (the paper's Fig. 9 setup). An empty string means bridge, the
// engine default.
func Parse(s string) (mode Mode, peer string, err error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch {
	case s == "" || s == "bridge" || s == "nat":
		return Bridge, "", nil
	case s == "none":
		return None, "", nil
	case s == "host":
		return Host, "", nil
	case s == "overlay":
		return Overlay, "", nil
	case s == "routing":
		return Routing, "", nil
	case strings.HasPrefix(s, "container:"):
		peer = strings.TrimPrefix(s, "container:")
		if peer == "" {
			return 0, "", fmt.Errorf("network: container mode requires a peer name")
		}
		return Container, peer, nil
	case s == "container":
		return Container, "", nil
	default:
		return 0, "", fmt.Errorf("network: unknown mode %q", s)
	}
}

// Reference setup extras on the server profile. These are chosen so
// the total boot time (engine setup + network setup) reproduces the
// Fig. 4(c) ratios; see SetupCost.
const (
	bridgeExtra  = 8 * time.Millisecond
	hostExtra    = 3 * time.Millisecond
	peerExtra    = 2 * time.Millisecond
	overlayExtra = 2490 * time.Millisecond
	routingExtra = 1920 * time.Millisecond
)

// EngineFactor is the multiplier applied to the engine-setup stage for
// this mode. Container mode skips booting a network namespace entirely
// (it joins the proxy's), which is why Fig. 4(c) shows its total boot
// at about half the no-network case.
func (m Mode) EngineFactor() float64 {
	if m == Container {
		return 0.5
	}
	return 1
}

// SetupCost is the network-specific portion of container boot for this
// mode on the given host model.
func (m Mode) SetupCost(cm *costmodel.Model) time.Duration {
	var base time.Duration
	switch m {
	case None:
		base = 0
	case Bridge:
		base = bridgeExtra
	case Host:
		base = hostExtra
	case Container:
		base = peerExtra
	case Overlay:
		base = overlayExtra
	case Routing:
		base = routingExtra
	default:
		panic(fmt.Sprintf("network: SetupCost for invalid mode %d", int(m)))
	}
	return cm.NetCost(base)
}

// BootCost is the combined engine + network stage for a container boot
// under this mode: the quantity Fig. 4(c) plots.
func (m Mode) BootCost(cm *costmodel.Model) time.Duration {
	engine := time.Duration(float64(cm.EngineSetupCost()) * m.EngineFactor())
	return engine + m.SetupCost(cm)
}

// TeardownCost is the network cleanup cost when the container stops.
// Multi-host networks must deregister; single-host modes are cheap.
func (m Mode) TeardownCost(cm *costmodel.Model) time.Duration {
	switch m {
	case Overlay:
		return cm.NetCost(120 * time.Millisecond)
	case Routing:
		return cm.NetCost(90 * time.Millisecond)
	case Bridge:
		return cm.NetCost(2 * time.Millisecond)
	default:
		return 0
	}
}
