package network

import (
	"testing"
	"testing/quick"

	"hotc/internal/costmodel"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		mode Mode
		peer string
		ok   bool
	}{
		{"", Bridge, "", true},
		{"bridge", Bridge, "", true},
		{"NAT", Bridge, "", true},
		{"none", None, "", true},
		{"host", Host, "", true},
		{"overlay", Overlay, "", true},
		{"routing", Routing, "", true},
		{"container:proxy", Container, "proxy", true},
		{"container", Container, "", true},
		{"container:", Container, "", false},
		{"warp", 0, "", false},
	}
	for _, tc := range cases {
		mode, peer, err := Parse(tc.in)
		if tc.ok && err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("Parse(%q): expected error", tc.in)
			}
			continue
		}
		if mode != tc.mode || peer != tc.peer {
			t.Errorf("Parse(%q) = %v/%q, want %v/%q", tc.in, mode, peer, tc.mode, tc.peer)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, m := range Modes() {
		if m == Container {
			continue // "container" needs a peer for full round trip
		}
		back, _, err := Parse(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v -> %q -> %v (%v)", m, m.String(), back, err)
		}
	}
}

func TestMultiHost(t *testing.T) {
	for _, m := range []Mode{None, Bridge, Host, Container} {
		if m.MultiHost() {
			t.Errorf("%v should be single-host", m)
		}
	}
	for _, m := range []Mode{Overlay, Routing} {
		if !m.MultiHost() {
			t.Errorf("%v should be multi-host", m)
		}
	}
}

// Fig. 4(c) single host: bridge and host mode boot close to None,
// container mode about half of it.
func TestFig4cSingleHostShape(t *testing.T) {
	cm := costmodel.New(costmodel.Server())
	none := None.BootCost(cm)
	bridge := Bridge.BootCost(cm)
	host := Host.BootCost(cm)
	ctr := Container.BootCost(cm)

	within := func(a, b, tol float64) bool {
		r := float64(a) / float64(b)
		return r > 1-tol && r < 1+tol
	}
	if !within(float64(bridge), float64(none), 0.15) {
		t.Fatalf("bridge boot %v should be close to none %v", bridge, none)
	}
	if !within(float64(host), float64(none), 0.15) {
		t.Fatalf("host boot %v should be close to none %v", host, none)
	}
	ratio := float64(ctr) / float64(none)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("container boot should be ~half of none: %v vs %v (ratio %.2f)", ctr, none, ratio)
	}
}

// Fig. 4(c) multi host: overlay up to 23x host-mode startup.
func TestFig4cMultiHostShape(t *testing.T) {
	cm := costmodel.New(costmodel.Server())
	host := Host.BootCost(cm)
	overlay := Overlay.BootCost(cm)
	routing := Routing.BootCost(cm)
	r := float64(overlay) / float64(host)
	if r < 18 || r > 28 {
		t.Fatalf("overlay/host boot ratio = %.1f, want ~23", r)
	}
	if routing >= overlay {
		t.Fatal("routing should be cheaper than overlay")
	}
	if routing <= host {
		t.Fatal("routing must cost far more than host mode")
	}
}

func TestTeardownCosts(t *testing.T) {
	cm := costmodel.New(costmodel.Server())
	if Overlay.TeardownCost(cm) <= Bridge.TeardownCost(cm) {
		t.Fatal("overlay teardown should exceed bridge teardown")
	}
	if None.TeardownCost(cm) != 0 || Host.TeardownCost(cm) != 0 {
		t.Fatal("none/host teardown should be free")
	}
}

func TestEdgeScalesNetwork(t *testing.T) {
	server := costmodel.New(costmodel.Server())
	pi := costmodel.New(costmodel.EdgePi())
	if Overlay.SetupCost(pi) <= Overlay.SetupCost(server) {
		t.Fatal("overlay setup should be slower on the Pi")
	}
}

func TestInvalidModePanics(t *testing.T) {
	cm := costmodel.New(costmodel.Server())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid mode did not panic")
		}
	}()
	Mode(99).SetupCost(cm)
}

// Property: every valid mode has non-negative setup/teardown and
// strictly positive boot cost on any sane profile.
func TestPropertyCostsNonNegative(t *testing.T) {
	f := func(netScale, engineScale uint8) bool {
		p := costmodel.Server()
		p.NetScale = 0.1 + float64(netScale%40)
		p.EngineScale = 0.1 + float64(engineScale%40)
		cm := costmodel.New(p)
		for _, m := range Modes() {
			if m.SetupCost(cm) < 0 || m.TeardownCost(cm) < 0 || m.BootCost(cm) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
