// Package simclock provides a virtual clock and a deterministic
// discrete-event scheduler. All simulated components in this repository
// take their notion of time from a *Scheduler rather than the wall
// clock, which makes every experiment byte-for-byte reproducible.
//
// Time is modelled as a time.Duration offset from the start of the
// simulation. Events scheduled for the same instant fire in the order
// they were scheduled (FIFO tie-break on a sequence number), so runs
// are deterministic regardless of map iteration or goroutine ordering.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is a virtual timestamp: the elapsed simulated duration since the
// scheduler was created.
type Time = time.Duration

// Event is a scheduled callback. The callback runs exactly once, at its
// deadline, on the goroutine that calls Run/Step; there is no hidden
// concurrency inside the scheduler.
type Event struct {
	when     Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped or canceled
}

// When reports the virtual deadline the event was scheduled for.
func (e *Event) When() Time { return e.when }

// Cancel prevents a pending event from firing. Canceling an event that
// already fired (or was already canceled) is a no-op. Cancel reports
// whether the event was still pending.
func (e *Event) Cancel() bool {
	if e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	return true
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler is a deterministic discrete-event simulator. The zero value
// is not usable; construct one with New.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventQueue
	running bool
	fired   uint64
	limit   uint64 // safety valve against runaway event loops; 0 = none
}

// New returns a Scheduler positioned at virtual time zero.
func New() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// SetEventLimit installs a safety valve: Run and RunUntil return
// ErrEventLimit once more than n events have fired. n == 0 removes the
// limit.
func (s *Scheduler) SetEventLimit(n uint64) { s.limit = n }

// ErrEventLimit is returned by Run/RunUntil when the event safety valve
// configured with SetEventLimit trips.
var ErrEventLimit = errors.New("simclock: event limit exceeded")

// At schedules fn to run at virtual time t. Scheduling in the past
// (t < Now) panics: that is always a logic error in a simulation, and
// silently clamping it would hide bugs.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("simclock: At with nil callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("simclock: scheduling into the past (now=%v, at=%v)", s.now, t))
	}
	s.seq++
	ev := &Event{when: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d from now. Negative d panics, zero d runs
// after all events already scheduled for the current instant.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: After with negative duration %v", d))
	}
	return s.At(s.now+d, fn)
}

// Every schedules fn to run every interval, starting one interval from
// now, until the returned stop function is called. The interval must be
// positive.
func (s *Scheduler) Every(interval time.Duration, fn func()) (stop func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("simclock: Every with non-positive interval %v", interval))
	}
	stopped := false
	var tick func()
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			pending = s.After(interval, tick)
		}
	}
	pending = s.After(interval, tick)
	return func() {
		stopped = true
		if pending != nil {
			pending.Cancel()
		}
	}
}

// Pending reports the number of events waiting to fire (including
// canceled events not yet reaped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Step executes the single next event, advancing virtual time to its
// deadline. It reports whether an event was executed (false when the
// queue is empty).
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.canceled {
			continue
		}
		s.now = ev.when
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains. It returns ErrEventLimit
// if the safety valve trips, nil otherwise.
func (s *Scheduler) Run() error {
	if s.running {
		panic("simclock: Run called re-entrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.Step() {
		if s.limit != 0 && s.fired > s.limit {
			return ErrEventLimit
		}
	}
	return nil
}

// RunUntil executes events with deadlines <= t, then advances the clock
// to exactly t (even if no event fired). Events scheduled beyond t stay
// queued.
func (s *Scheduler) RunUntil(t Time) error {
	if t < s.now {
		return fmt.Errorf("simclock: RunUntil into the past (now=%v, until=%v)", s.now, t)
	}
	if s.running {
		panic("simclock: RunUntil called re-entrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for {
		ev := s.peek()
		if ev == nil || ev.when > t {
			break
		}
		s.Step()
		if s.limit != 0 && s.fired > s.limit {
			return ErrEventLimit
		}
	}
	s.now = t
	return nil
}

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		if s.queue[0].canceled {
			heap.Pop(&s.queue)
			continue
		}
		return s.queue[0]
	}
	return nil
}

// Sleep is a convenience for sequential simulation scripts: it runs all
// events within the next d of virtual time.
func (s *Scheduler) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: Sleep with negative duration %v", d))
	}
	// RunUntil only fails on past deadlines or the event limit; a past
	// deadline is impossible here and the limit error is deliberately
	// surfaced by the next Run/RunUntil call.
	_ = s.RunUntil(s.now + d)
}
