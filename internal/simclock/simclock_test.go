package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", s.Pending())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	s := New()
	var fired Time = -1
	s.After(5*time.Second, func() { fired = s.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5*time.Second {
		t.Fatalf("event fired at %v, want 5s", fired)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", s.Now())
	}
}

func TestEventsFireInDeadlineOrder(t *testing.T) {
	s := New()
	var order []int
	s.After(3*time.Second, func() { order = append(order, 3) })
	s.After(1*time.Second, func() { order = append(order, 1) })
	s.After(2*time.Second, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-instant events fired out of order: %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var hit []Time
	s.After(time.Second, func() {
		hit = append(hit, s.Now())
		s.After(time.Second, func() {
			hit = append(hit, s.Now())
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hit) != 2 || hit[0] != time.Second || hit[1] != 2*time.Second {
		t.Fatalf("hit = %v, want [1s 2s]", hit)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev := s.After(time.Second, func() { fired = true })
	if !ev.Cancel() {
		t.Fatal("Cancel() = false on pending event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel() = true, want false")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	ev := s.After(time.Second, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ev.Cancel() {
		t.Fatal("Cancel() after firing = true, want false")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := New()
	var fired []Time
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		s.After(d, func() { fired = append(fired, s.Now()) })
	}
	if err := s.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
}

func TestRunUntilAdvancesWithNoEvents(t *testing.T) {
	s := New()
	if err := s.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if s.Now() != time.Minute {
		t.Fatalf("Now() = %v, want 1m", s.Now())
	}
}

func TestRunUntilPastReturnsError(t *testing.T) {
	s := New()
	s.Sleep(time.Minute)
	if err := s.RunUntil(time.Second); err == nil {
		t.Fatal("RunUntil into the past did not error")
	}
}

func TestEvery(t *testing.T) {
	s := New()
	count := 0
	stop := s.Every(time.Second, func() {
		count++
		if count == 5 {
			// stopping from inside the callback must halt the series
		}
	})
	s.Sleep(5 * time.Second)
	stop()
	s.Sleep(10 * time.Second)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
}

func TestEveryStopInsideCallback(t *testing.T) {
	s := New()
	count := 0
	var stop func()
	stop = s.Every(time.Second, func() {
		count++
		if count == 3 {
			stop()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("ticks = %d, want 3", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.Sleep(time.Minute)
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	s.At(time.Second, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestEventLimit(t *testing.T) {
	s := New()
	s.SetEventLimit(10)
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(time.Millisecond, loop)
	if err := s.Run(); err != ErrEventLimit {
		t.Fatalf("Run() = %v, want ErrEventLimit", err)
	}
}

func TestFiredCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

// Property: no matter what (non-negative) delays are scheduled, events
// fire in non-decreasing time order and the clock never goes backwards.
func TestPropertyMonotonicTime(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fireTimes []Time
		for _, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			s.After(dd, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Step and RunUntil never loses or duplicates
// events.
func TestPropertyStepRunUntilEquivalence(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() (*Scheduler, *int) {
			s := New()
			count := new(int)
			for i := 0; i < int(n); i++ {
				s.After(time.Duration(r.Intn(1000))*time.Millisecond, func() { *count++ })
			}
			return s, count
		}
		r = rand.New(rand.NewSource(seed))
		s1, c1 := mk()
		if err := s1.Run(); err != nil {
			return false
		}
		r = rand.New(rand.NewSource(seed))
		s2, c2 := mk()
		for s2.Step() {
		}
		return *c1 == *c2 && *c1 == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
