package sharing

import "testing"

func TestClassifierNeutralUntilMinTicks(t *testing.T) {
	c := NewClassifier(ClassifierConfig{MinTicks: 3})
	if got := c.Observe(10, 0, 10); got != RoleNeutral {
		t.Fatalf("tick 1: got %v, want neutral", got)
	}
	if got := c.Observe(10, 0, 10); got != RoleNeutral {
		t.Fatalf("tick 2: got %v, want neutral", got)
	}
	if got := c.Observe(10, 0, 10); got != RoleLender {
		t.Fatalf("tick 3: got %v, want lender", got)
	}
}

func TestClassifierOverForecastBecomesLender(t *testing.T) {
	c := NewClassifier(ClassifierConfig{})
	for i := 0; i < 6; i++ {
		c.Observe(8, 2, 0)
	}
	if c.Role() != RoleLender {
		t.Fatalf("persistently over-forecasted: role %v, want lender (errEWMA %.2f)", c.Role(), c.ForecastError())
	}
	if c.ForecastError() <= 0 {
		t.Fatalf("forecast error %.2f, want positive", c.ForecastError())
	}
}

func TestClassifierUnderForecastBecomesRenter(t *testing.T) {
	c := NewClassifier(ClassifierConfig{})
	for i := 0; i < 6; i++ {
		c.Observe(1, 5, 0)
	}
	if c.Role() != RoleRenter {
		t.Fatalf("persistently under-forecasted: role %v, want renter (errEWMA %.2f)", c.Role(), c.ForecastError())
	}
}

func TestClassifierIdleSurplusBecomesLender(t *testing.T) {
	// Forecast tracks demand exactly (no forecast error), but headroom
	// keeps a persistent idle surplus — still a lender.
	c := NewClassifier(ClassifierConfig{})
	for i := 0; i < 6; i++ {
		c.Observe(2, 2, 5)
	}
	if c.Role() != RoleLender {
		t.Fatalf("persistent idle surplus: role %v, want lender", c.Role())
	}
}

func TestClassifierAccurateForecastStaysNeutral(t *testing.T) {
	c := NewClassifier(ClassifierConfig{})
	for i := 0; i < 10; i++ {
		c.Observe(3, 3, 2) // surplus −1: below the lend threshold
	}
	if c.Role() != RoleNeutral {
		t.Fatalf("accurate forecast: role %v, want neutral", c.Role())
	}
}

func TestClassifierRecoversFromRole(t *testing.T) {
	c := NewClassifier(ClassifierConfig{Alpha: 0.5})
	for i := 0; i < 6; i++ {
		c.Observe(8, 2, 0)
	}
	if c.Role() != RoleLender {
		t.Fatalf("setup: role %v, want lender", c.Role())
	}
	// Demand catches up with the forecast: the role decays back.
	for i := 0; i < 10; i++ {
		c.Observe(4, 4, 0)
	}
	if c.Role() != RoleNeutral {
		t.Fatalf("after demand catch-up: role %v, want neutral (errEWMA %.2f)", c.Role(), c.ForecastError())
	}
}

func TestZeroValueClassifierUsable(t *testing.T) {
	var c Classifier
	for i := 0; i < 6; i++ {
		c.Observe(9, 1, 0)
	}
	if c.Role() != RoleLender {
		t.Fatalf("zero-value classifier: role %v, want lender", c.Role())
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want PolicyMode
		ok   bool
	}{
		{"", ModeSameImage, true},
		{"same-image", ModeSameImage, true},
		{"any", ModeAny, true},
		{"yes-please", ModeSameImage, false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok {
			t.Fatalf("ParseMode(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestPolicyCompatible(t *testing.T) {
	same := Policy{Mode: ModeSameImage}
	any := Policy{Mode: ModeAny}
	py := func(mem int, share bool) Candidate {
		return Candidate{Image: "python:3.8", MemoryMB: mem, Shareable: share}
	}
	node := Candidate{Image: "node:10", Shareable: true}

	for _, tc := range []struct {
		name           string
		p              Policy
		renter, lender Candidate
		ok             bool
		reason         string
	}{
		{"same image", same, py(0, true), py(0, true), true, ""},
		{"image mismatch", same, py(0, true), node, false, DenyImage},
		{"any bridges images", any, py(0, true), node, true, ""},
		{"empty images match", same, Candidate{Shareable: true}, Candidate{Shareable: true}, true, ""},
		{"renter opted out", same, py(0, false), py(0, true), false, DenyOptOut},
		{"lender opted out", same, py(0, true), py(0, false), false, DenyOptOut},
		{"renter fits lender memory", same, py(256, true), py(512, true), true, ""},
		{"renter exceeds lender memory", same, py(1024, true), py(512, true), false, DenyMemory},
		{"unsized renter on sized lender", same, py(0, true), py(512, true), false, DenyMemory},
		{"unconstrained lender hosts anyone", same, py(4096, true), py(0, true), true, ""},
	} {
		ok, reason := tc.p.Compatible(tc.renter, tc.lender)
		if ok != tc.ok || reason != tc.reason {
			t.Errorf("%s: Compatible = (%v, %q), want (%v, %q)", tc.name, ok, reason, tc.ok, tc.reason)
		}
	}
}
