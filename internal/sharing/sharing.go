// Package sharing implements the policy half of inter-function
// warm-container sharing (Pagurus, arXiv:2108.11240): deciding which
// functions are lenders or renters from the controller's demand
// history, and which pairs of functions may share a container at all.
//
// The package is mechanism-free on purpose. The live gateway and the
// simulated pool both consult it; neither the lease path (wipe,
// re-specialize, re-key) nor any locking lives here, so the same
// classifier and compatibility rules apply to both substrates.
package sharing

import (
	"fmt"
	"math"
)

// Role is a function's sharing classification.
type Role int

const (
	// RoleNeutral is the starting state: not enough evidence either
	// way. Neutral functions may still lend idle surplus (a fresh
	// renter must be able to rent before any classification exists),
	// but only above their own forecast.
	RoleNeutral Role = iota
	// RoleLender marks a persistently over-forecasted function: its
	// idle containers are offered as zygotes first.
	RoleLender
	// RoleRenter marks a persistently under-forecasted function: it
	// never lends, and its cold path tries to rent before booting.
	RoleRenter
)

// String names the role for traces and /system/predictions.
func (r Role) String() string {
	switch r {
	case RoleLender:
		return "lender"
	case RoleRenter:
		return "renter"
	default:
		return "neutral"
	}
}

// ClassifierConfig tunes the lender/renter classifier.
type ClassifierConfig struct {
	// Alpha is the EWMA smoothing factor over forecast error and idle
	// surplus (default 0.3): high enough to follow workload shifts,
	// low enough that one noisy interval cannot flip a role.
	Alpha float64
	// LendThreshold is the smoothed over-forecast (forecast − demand)
	// at or above which a function becomes a lender (default 1).
	LendThreshold float64
	// RentThreshold is the smoothed under-forecast at or below which a
	// function becomes a renter (default −0.5: renting is cheap to be
	// wrong about, lending is not).
	RentThreshold float64
	// SurplusThreshold classifies a lender from persistent idle
	// surplus (idle − ⌈forecast⌉) even when the forecast itself tracks
	// demand — headroom and hysteresis strand containers the forecast
	// error never sees (default 1).
	SurplusThreshold float64
	// MinTicks is how many control intervals must be observed before
	// any non-neutral classification (default 3).
	MinTicks int
}

func (c ClassifierConfig) withDefaults() ClassifierConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.LendThreshold <= 0 {
		c.LendThreshold = 1
	}
	if c.RentThreshold >= 0 {
		c.RentThreshold = -0.5
	}
	if c.SurplusThreshold <= 0 {
		c.SurplusThreshold = 1
	}
	if c.MinTicks <= 0 {
		c.MinTicks = 3
	}
	return c
}

// Classifier derives one function's sharing role from its control
// history. The zero value is usable (defaults applied on first
// Observe); it is not goroutine-safe — callers hold their own shard or
// simulation lock, matching the controller state it feeds on.
type Classifier struct {
	cfg         ClassifierConfig
	inited      bool
	ticks       int
	errEWMA     float64 // forecast − demand, smoothed
	surplusEWMA float64 // idle − ⌈forecast⌉, smoothed
	role        Role
}

// NewClassifier builds a classifier with explicit tuning.
func NewClassifier(cfg ClassifierConfig) *Classifier {
	return &Classifier{cfg: cfg.withDefaults(), inited: true}
}

// Observe feeds one control interval: the forecast that had been made
// for it, the demand actually observed, and the idle pool size at the
// tick. It returns the (possibly updated) role.
//
// A function is a lender when it is persistently over-forecasted OR
// persistently carries idle surplus beyond its forecast; it is a
// renter when persistently under-forecasted. Both thresholds apply
// only after MinTicks intervals, and the two sides are deliberately
// asymmetric: lending a container that turns out to be needed costs a
// real cold start, renting one that was not needed costs nothing.
func (c *Classifier) Observe(forecast, demand, idle float64) Role {
	if !c.inited {
		c.cfg = c.cfg.withDefaults()
		c.inited = true
	}
	a := c.cfg.Alpha
	err := forecast - demand
	surplus := idle - math.Ceil(forecast)
	if c.ticks == 0 {
		c.errEWMA, c.surplusEWMA = err, surplus
	} else {
		c.errEWMA = a*err + (1-a)*c.errEWMA
		c.surplusEWMA = a*surplus + (1-a)*c.surplusEWMA
	}
	c.ticks++
	if c.ticks < c.cfg.MinTicks {
		c.role = RoleNeutral
		return c.role
	}
	switch {
	case c.errEWMA <= c.cfg.RentThreshold:
		c.role = RoleRenter
	case c.errEWMA >= c.cfg.LendThreshold || c.surplusEWMA >= c.cfg.SurplusThreshold:
		c.role = RoleLender
	default:
		c.role = RoleNeutral
	}
	return c.role
}

// Role returns the current classification.
func (c *Classifier) Role() Role { return c.role }

// ForecastError returns the smoothed forecast error (forecast −
// demand): positive means over-forecasted.
func (c *Classifier) ForecastError() float64 { return c.errEWMA }

// Ticks returns how many control intervals have been observed.
func (c *Classifier) Ticks() int { return c.ticks }

// PolicyMode selects the compatibility rule between lender and renter.
type PolicyMode int

const (
	// ModeSameImage requires lender and renter to declare the same
	// container image — the stand-in for "same language and runtime
	// version": the rented container's layers and interpreter are
	// exactly what the renter would have booted, so only the volume
	// wipe and the renter's app init are paid.
	ModeSameImage PolicyMode = iota
	// ModeAny lends across images: the renter additionally pays the
	// image-layer delta its own boot would have pulled (cache-scaled).
	// Cheaper than a full boot, dearer than a same-image lease.
	ModeAny
)

// String names the mode for flags and stats.
func (m PolicyMode) String() string {
	switch m {
	case ModeAny:
		return "any"
	default:
		return "same-image"
	}
}

// ParseMode resolves a -share-policy flag value. Empty means the
// same-image default.
func ParseMode(s string) (PolicyMode, error) {
	switch s {
	case "", "same-image":
		return ModeSameImage, nil
	case "any":
		return ModeAny, nil
	default:
		return ModeSameImage, fmt.Errorf("sharing: unknown policy %q (want same-image|any)", s)
	}
}

// Candidate is the slice of a function's deployment the policy judges:
// what it runs on and whether it opted out.
type Candidate struct {
	// Image is the declared container image ("python:3.8"); empty
	// means no image modelling, which only matches other empty images
	// under ModeSameImage.
	Image string
	// MemoryMB is the declared memory class (0 = unconstrained).
	MemoryMB int
	// Shareable is the per-deploy opt-in (default true at the deploy
	// layer); false removes the function from both sides of sharing.
	Shareable bool
}

// Denial reasons returned by Policy.Compatible, used as metric labels
// and stats keys.
const (
	DenyOptOut = "opt_out"
	DenyImage  = "image_mismatch"
	DenyMemory = "memory_class"
)

// Policy gates which function pairs may share a container.
type Policy struct {
	Mode PolicyMode
}

// Compatible reports whether renter may take over one of lender's
// containers, with a denial reason when not.
//
// The memory rule: a lender with MemoryMB 0 is unconstrained and can
// host anyone; otherwise the renter must declare a class and fit
// inside the lender's (a container sized for 512 MB cannot suddenly
// promise 1 GB).
func (p Policy) Compatible(renter, lender Candidate) (bool, string) {
	if !renter.Shareable || !lender.Shareable {
		return false, DenyOptOut
	}
	if p.Mode == ModeSameImage && renter.Image != lender.Image {
		return false, DenyImage
	}
	if lender.MemoryMB > 0 && (renter.MemoryMB <= 0 || renter.MemoryMB > lender.MemoryMB) {
		return false, DenyMemory
	}
	return true, ""
}
