#!/bin/sh
# Multi-node routing bench: the same open-loop load (hotc-load) driven
# through hotc-router over three hotcd nodes, once with warm-aware
# placement and once with the round-robin baseline, written to
# BENCH_cluster.json at the repo root.
#
# The claim under test is the front tier's reason to exist: placement
# that follows warm instances pays roughly 1/N of round-robin's cold
# starts, because round-robin makes every node grow (and keep re-
# growing, once keep-alive expires idle runtimes) its own warm pool
# for the same key while warm-aware routing concentrates the key on
# the nodes that already hold runtimes. Cold-start rate is read from
# each node's own /system/stats counters; latency percentiles come
# from hotc-load's client-side measurements through the router.
#
#   BENCH_DURATION=10s BENCH_RATE=80 scripts/bench-cluster.sh
set -eu
cd "$(dirname "$0")/.."

# The rate/keep-alive pairing is the experiment: at 10 req/s the
# stream's inter-arrival is 100ms, over the 200ms keep-alive per node — but
# round-robin splits it three ways to a 300ms per-node gap (~280ms idle), so idle
# expiry reclaims each node's runtime right before its next turn and
# nearly every request boots cold. Warm-aware placement keeps the
# stream concentrated, so only the startup transient is cold.
OUT=BENCH_cluster.json
DURATION="${BENCH_DURATION:-6s}"
RATE="${BENCH_RATE:-10}"
COLD_MS="${BENCH_COLD_MS:-250}"
BODY_MS="${BENCH_BODY_MS:-20}"
KEEPALIVE="${BENCH_KEEPALIVE:-200ms}"
TMPDIR="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMPDIR"' EXIT

go build -o "$TMPDIR/hotcd" ./cmd/hotcd
go build -o "$TMPDIR/hotc-router" ./cmd/hotc-router
go build -o "$TMPDIR/hotc-load" ./cmd/hotc-load

wait_for_base() { # $1 = logfile, $2 = sed pattern
	base=""
	i=0
	while [ $i -lt 50 ]; do
		base="$(sed -n "$2" "$1" | head -n 1)"
		[ -n "$base" ] && break
		i=$((i + 1))
		sleep 0.1
	done
	if [ -z "$base" ]; then
		echo "bench-cluster: process did not come up ($1)" >&2
		cat "$1" >&2
		exit 1
	fi
	printf '%s' "$base"
}

# run_policy <warm|rr> -> writes $TMPDIR/<policy>.json
run_policy() {
	policy="$1"
	echo "== policy=$policy: booting 3 hotcd + router" >&2
	nodes=""
	node_pids=""
	for i in 1 2 3; do
		"$TMPDIR/hotcd" -addr 127.0.0.1:0 -preload=false -keepalive "$KEEPALIVE" \
			-reap-interval 100ms -predictor off >"$TMPDIR/node$i.log" 2>&1 &
		pid=$!
		PIDS="$PIDS $pid"
		node_pids="$node_pids $pid"
		base="$(wait_for_base "$TMPDIR/node$i.log" 's/^hotcd listening on //p')"
		eval "NODE$i=\$base"
		nodes="$nodes,$base"
	done
	nodes="${nodes#,}"
	"$TMPDIR/hotc-router" -addr 127.0.0.1:0 -policy "$policy" -nodes "$nodes" \
		-poll-interval 200ms >"$TMPDIR/router.log" 2>&1 &
	router_pid=$!
	PIDS="$PIDS $router_pid"
	ROUTER="$(wait_for_base "$TMPDIR/router.log" 's/^hotc-router listening on //p')"

	echo "== policy=$policy: rate=$RATE for $DURATION (cold ${COLD_MS}ms, service ${BODY_MS}ms, keepalive $KEEPALIVE)" >&2
	"$TMPDIR/hotc-load" -target "$ROUTER" -function bench -deploy-handler sleep \
		-cold-start-ms "$COLD_MS" -body "$BODY_MS" -rate "$RATE" -duration "$DURATION" \
		-assert-max-5xx 0 -out "$TMPDIR/load-$policy.json" >&2

	# Cold starts come from the nodes' own counters: the router cannot
	# see which upstream requests booted a runtime.
	: >"$TMPDIR/nodes-$policy.json"
	for i in 1 2 3; do
		eval "base=\$NODE$i"
		curl -sf "$base/system/stats" |
			jq '{requests: .stats.Requests, coldStarts: .stats.ColdStarts, reused: .stats.Reused, warm: (.warmInstances.bench // 0)}' \
				>>"$TMPDIR/nodes-$policy.json"
	done
	jq -s --slurpfile load "$TMPDIR/load-$policy.json" '
		{
		  per_node: .,
		  requests: (map(.requests) | add),
		  cold_starts: (map(.coldStarts) | add),
		  cold_start_rate: (if (map(.requests) | add) > 0
		    then (map(.coldStarts) | add) / (map(.requests) | add) else 0 end),
		  load: $load[0]
		}' "$TMPDIR/nodes-$policy.json" >"$TMPDIR/$policy.json"

	kill $router_pid $node_pids 2>/dev/null || true
	wait $router_pid $node_pids 2>/dev/null || true
}

run_policy warm
run_policy rr

GOVER="$(go env GOVERSION)"
jq -n --arg go "$GOVER" --arg dur "$DURATION" --arg rate "$RATE" \
	--arg cold "$COLD_MS" --arg body "$BODY_MS" --arg ka "$KEEPALIVE" \
	--slurpfile warm "$TMPDIR/warm.json" --slurpfile rr "$TMPDIR/rr.json" '
	{
	  generated_by: "scripts/bench-cluster.sh",
	  go: $go,
	  duration: $dur,
	  rate_rps: ($rate | tonumber),
	  cold_start_ms: ($cold | tonumber),
	  service_ms: ($body | tonumber),
	  keepalive: $ka,
	  note: "Identical open-loop load through hotc-router over 3 hotcd nodes, warm-aware placement vs round-robin. Cold starts are summed from the nodes own /system/stats; latency is hotc-load client-side through the router.",
	  claims: [
	    "warm-aware placement concentrates a key on nodes already holding its runtimes, so its cluster-wide cold-start rate is measurably below round-robin, which regrows a warm pool on every node",
	    "tail latency through the router tracks the cold-start rate: round-robin pays the full cold boot at p90 while warm-aware placement stays at warm service time"
	  ],
	  warm_aware: $warm[0],
	  round_robin: $rr[0],
	  cold_start_rate_ratio_rr_over_warm: (
	    if $warm[0].cold_start_rate > 0
	    then ($rr[0].cold_start_rate / $warm[0].cold_start_rate)
	    else null end)
	}' >"$OUT"

echo "wrote $OUT"
jq '{warm: .warm_aware.cold_start_rate, rr: .round_robin.cold_start_rate, ratio: .cold_start_rate_ratio_rr_over_warm, warm_p90: .warm_aware.load.latency_ms.p90, rr_p90: .round_robin.load.latency_ms.p90}' "$OUT"
