#!/bin/sh
# Full verification tier: what CI runs before merging.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test -race"
go test -race ./...
echo "== goroutine-leak check (live gateway)"
HOTC_LEAKCHECK=1 go test -race -count=1 ./internal/faas/live/
echo "== contention bench smoke (1 iteration)"
# The contention suite's benchmarks (BenchmarkGatewayParallel,
# BenchmarkObsHotPath) compile and run one iteration each so bit-rot in
# the bench harness is caught here, not at measurement time.
go test -run '^$' -bench 'GatewayParallel|ObsHotPath' -benchtime=1x ./internal/faas/live/ ./internal/obs/
echo "== data-path bench smoke (1 iteration)"
go test -run '^$' -bench 'GatewayThroughput' -benchtime=1x ./internal/faas/live/
echo "== zero-alloc regression guard (non-race: AllocsPerRun)"
# The race run above skips these: the detector's instrumentation
# perturbs allocation counts. This non-race pass asserts the pooled
# copy and the []byte shim stay at zero heap allocations per request.
go test -run 'ZeroAlloc' -count=1 ./internal/faas/live/
echo "== metric-name lint"
./scripts/lint-metrics.sh
echo "verify: OK"
