#!/bin/sh
# Full verification tier: what CI runs before merging.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test -race"
go test -race ./...
echo "== goroutine-leak check (live gateway)"
HOTC_LEAKCHECK=1 go test -race -count=1 ./internal/faas/live/
echo "== contention bench smoke (1 iteration)"
# The contention suite's benchmarks (BenchmarkGatewayParallel,
# BenchmarkObsHotPath) compile and run one iteration each so bit-rot in
# the bench harness is caught here, not at measurement time.
go test -run '^$' -bench 'GatewayParallel|ObsHotPath' -benchtime=1x ./internal/faas/live/ ./internal/obs/
echo "== data-path bench smoke (1 iteration)"
go test -run '^$' -bench 'GatewayThroughput' -benchtime=1x ./internal/faas/live/
echo "== zero-alloc regression guard (non-race: AllocsPerRun)"
# The race run above skips these: the detector's instrumentation
# perturbs allocation counts. This non-race pass asserts the pooled
# copy and the []byte shim stay at zero heap allocations per request.
go test -run 'ZeroAlloc' -count=1 ./internal/faas/live/ ./internal/obs/
echo "== load-generator smoke (2s self-hosted run)"
# hotc-load boots an in-process daemon on a loopback socket and drives
# it open-loop for 2s at a non-saturating rate: the run must complete
# with non-zero goodput and zero 5xx, proving the admission tier and
# the generator itself against a real socket path.
LOADTMP="$(mktemp -d)"
HOTCD_PID=""
SMOKE_PIDS=""
trap 'if [ -n "$HOTCD_PID" ]; then kill "$HOTCD_PID" 2>/dev/null || true; fi; for p in $SMOKE_PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$LOADTMP"' EXIT
go build -o "$LOADTMP/hotc-load" ./cmd/hotc-load
"$LOADTMP/hotc-load" -rate 50 -duration 2s -assert-min-ok 0.9 -assert-max-5xx 0 \
	-out "$LOADTMP/smoke.json"
echo "== prometheus-exposition check (strict parse of a live hotcd /metrics)"
# Boot a real daemon, drive a traced request so histograms, exemplars
# and the hotc_trace_*/hotc_slo_* families are live, then run the
# strict exposition parser (hotc-trace metrics) over the actual scrape
# output. A malformed line — bad escape, non-cumulative bucket,
# misplaced exemplar — fails here, not in a dashboard.
go build -o "$LOADTMP/hotcd" ./cmd/hotcd
go build -o "$LOADTMP/hotc-trace" ./cmd/hotc-trace
"$LOADTMP/hotcd" -addr 127.0.0.1:0 >"$LOADTMP/hotcd.log" 2>&1 &
HOTCD_PID=$!
BASE=""
i=0
while [ $i -lt 50 ]; do
	BASE="$(sed -n 's/^hotcd listening on //p' "$LOADTMP/hotcd.log" | head -n 1)"
	[ -n "$BASE" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$BASE" ]; then
	echo "verify: hotcd did not come up" >&2
	cat "$LOADTMP/hotcd.log" >&2
	exit 1
fi
curl -sf -X POST "$BASE/function/echo" -d 'verify' \
	-H 'traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01' >/dev/null
curl -sf -X POST "$BASE/function/qr" -d 'verify' >/dev/null
"$LOADTMP/hotc-trace" metrics "$BASE/metrics"
"$LOADTMP/hotc-trace" spans "$BASE/system/trace" >/dev/null
kill "$HOTCD_PID" 2>/dev/null || true
wait "$HOTCD_PID" 2>/dev/null || true
HOTCD_PID=""
echo "== prefork smoke (generic handoff beats the full cold boot)"
# Boot a daemon with the generic pool armed, deploy a fresh 400ms
# function and time its first request: it must answer X-Hotc-Reused:
# false (it IS a cold start) with X-Hotc-Boot: generic, and complete
# well under the full 400ms — only the app-init share is paid.
"$LOADTMP/hotcd" -addr 127.0.0.1:0 -prefork -preload=false \
	>"$LOADTMP/prefork.log" 2>&1 &
HOTCD_PID=$!
BASE=""
i=0
while [ $i -lt 50 ]; do
	BASE="$(sed -n 's/^hotcd listening on //p' "$LOADTMP/prefork.log" | head -n 1)"
	[ -n "$BASE" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$BASE" ]; then
	echo "verify: prefork hotcd did not come up" >&2
	cat "$LOADTMP/prefork.log" >&2
	exit 1
fi
sleep 0.5 # let the generic pool finish its prefill (120ms boots)
curl -sf -X POST "$BASE/system/functions" \
	-d '{"name":"fresh","handler":"upper","coldStartMs":400}' >/dev/null
T0=$(date +%s%N)
curl -sf -D "$LOADTMP/prefork-headers" -o /dev/null \
	-X POST "$BASE/function/fresh" -d 'smoke'
T1=$(date +%s%N)
FIRST_MS=$(((T1 - T0) / 1000000))
grep -qi '^x-hotc-reused: false' "$LOADTMP/prefork-headers" || {
	echo "verify: first request to a fresh function was not a cold start" >&2
	cat "$LOADTMP/prefork-headers" >&2
	exit 1
}
grep -qi '^x-hotc-boot: generic' "$LOADTMP/prefork-headers" || {
	echo "verify: first request did not specialize a generic watchdog" >&2
	cat "$LOADTMP/prefork-headers" >&2
	exit 1
}
if [ "$FIRST_MS" -ge 300 ]; then
	echo "verify: generic handoff took ${FIRST_MS}ms, want well under the 400ms full cold" >&2
	exit 1
fi
echo "   generic handoff: ${FIRST_MS}ms (full cold is 400ms)"
kill "$HOTCD_PID" 2>/dev/null || true
wait "$HOTCD_PID" 2>/dev/null || true
HOTCD_PID=""
echo "== sharing smoke (second function's first request rents the first's idle instance)"
# Boot a daemon with inter-function sharing armed and a short idle
# grace, deploy two 400ms functions, warm the first, wait past the
# grace, then time the second function's very first request: it must
# answer X-Hotc-Boot: rented and complete well under the 400ms full
# cold — only wipe + app init is paid.
"$LOADTMP/hotcd" -addr 127.0.0.1:0 -share -share-idle-grace 100ms -preload=false \
	>"$LOADTMP/share.log" 2>&1 &
HOTCD_PID=$!
BASE=""
i=0
while [ $i -lt 50 ]; do
	BASE="$(sed -n 's/^hotcd listening on //p' "$LOADTMP/share.log" | head -n 1)"
	[ -n "$BASE" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$BASE" ]; then
	echo "verify: sharing hotcd did not come up" >&2
	cat "$LOADTMP/share.log" >&2
	exit 1
fi
curl -sf -X POST "$BASE/system/functions" \
	-d '{"name":"lender","handler":"upper","coldStartMs":400}' >/dev/null
curl -sf -X POST "$BASE/system/functions" \
	-d '{"name":"renter","handler":"upper","coldStartMs":400}' >/dev/null
curl -sf -X POST "$BASE/function/lender" -d 'warmup' >/dev/null
sleep 0.3 # let the lender's instance age past the 100ms idle grace
T0=$(date +%s%N)
curl -sf -D "$LOADTMP/share-headers" -o /dev/null \
	-X POST "$BASE/function/renter" -d 'smoke'
T1=$(date +%s%N)
RENT_MS=$(((T1 - T0) / 1000000))
grep -qi '^x-hotc-boot: rented' "$LOADTMP/share-headers" || {
	echo "verify: renter's first request did not rent the lender's idle instance" >&2
	cat "$LOADTMP/share-headers" >&2
	exit 1
}
if [ "$RENT_MS" -ge 300 ]; then
	echo "verify: rented boot took ${RENT_MS}ms, want well under the 400ms full cold" >&2
	exit 1
fi
curl -sf "$BASE/system/stats" | grep -q '"leasesGranted": *1' || {
	echo "verify: /system/stats sharing block does not report the lease" >&2
	curl -sf "$BASE/system/stats" >&2 || true
	exit 1
}
echo "   rented boot: ${RENT_MS}ms (full cold is 400ms)"
kill "$HOTCD_PID" 2>/dev/null || true
wait "$HOTCD_PID" 2>/dev/null || true
HOTCD_PID=""
echo "== router smoke (hotc-router + 2 hotcd: routed request round-trips with trace headers)"
# Boot a two-node cluster behind the router and drive one traced
# request through it: the response must come back 200 with the
# caller's trace ID echoed (one trace crosses router -> node ->
# watchdog) and the serving node named in X-Hotc-Node.
go build -o "$LOADTMP/hotc-router" ./cmd/hotc-router
N1_BASE=""
N2_BASE=""
for n in 1 2; do
	"$LOADTMP/hotcd" -addr 127.0.0.1:0 >"$LOADTMP/node$n.log" 2>&1 &
	SMOKE_PIDS="$SMOKE_PIDS $!"
done
for n in 1 2; do
	base=""
	i=0
	while [ $i -lt 50 ]; do
		base="$(sed -n 's/^hotcd listening on //p' "$LOADTMP/node$n.log" | head -n 1)"
		[ -n "$base" ] && break
		i=$((i + 1))
		sleep 0.1
	done
	if [ -z "$base" ]; then
		echo "verify: smoke hotcd $n did not come up" >&2
		cat "$LOADTMP/node$n.log" >&2
		exit 1
	fi
	eval "N${n}_BASE=\$base"
done
"$LOADTMP/hotc-router" -addr 127.0.0.1:0 -nodes "$N1_BASE,$N2_BASE" \
	>"$LOADTMP/router.log" 2>&1 &
SMOKE_PIDS="$SMOKE_PIDS $!"
ROUTER_BASE=""
i=0
while [ $i -lt 50 ]; do
	ROUTER_BASE="$(sed -n 's/^hotc-router listening on //p' "$LOADTMP/router.log" | head -n 1)"
	[ -n "$ROUTER_BASE" ] && break
	i=$((i + 1))
	sleep 0.1
done
if [ -z "$ROUTER_BASE" ]; then
	echo "verify: hotc-router did not come up" >&2
	cat "$LOADTMP/router.log" >&2
	exit 1
fi
SMOKE_TRACE=4bf92f3577b34da6a3ce929d0e0e4736
curl -sf -D "$LOADTMP/routed-headers" -o "$LOADTMP/routed-body" \
	-X POST "$ROUTER_BASE/function/echo" -d 'routed' \
	-H "traceparent: 00-$SMOKE_TRACE-00f067aa0ba902b7-01"
grep -q '^routed$' "$LOADTMP/routed-body" || {
	echo "verify: routed echo body wrong" >&2
	cat "$LOADTMP/routed-body" >&2
	exit 1
}
grep -qi "^x-hotc-trace-id: $SMOKE_TRACE" "$LOADTMP/routed-headers" || {
	echo "verify: routed response lost the trace ID" >&2
	cat "$LOADTMP/routed-headers" >&2
	exit 1
}
grep -qi '^x-hotc-node: ' "$LOADTMP/routed-headers" || {
	echo "verify: routed response names no serving node" >&2
	cat "$LOADTMP/routed-headers" >&2
	exit 1
}
for p in $SMOKE_PIDS; do
	kill "$p" 2>/dev/null || true
	wait "$p" 2>/dev/null || true
done
SMOKE_PIDS=""
echo "== metric-name lint"
./scripts/lint-metrics.sh
echo "verify: OK"
