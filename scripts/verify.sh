#!/bin/sh
# Full verification tier: what CI runs before merging.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test -race"
go test -race ./...
echo "== goroutine-leak check (live gateway)"
HOTC_LEAKCHECK=1 go test -race -count=1 ./internal/faas/live/
echo "== contention bench smoke (1 iteration)"
# The contention suite's benchmarks (BenchmarkGatewayParallel,
# BenchmarkObsHotPath) compile and run one iteration each so bit-rot in
# the bench harness is caught here, not at measurement time.
go test -run '^$' -bench 'GatewayParallel|ObsHotPath' -benchtime=1x ./internal/faas/live/ ./internal/obs/
echo "== data-path bench smoke (1 iteration)"
go test -run '^$' -bench 'GatewayThroughput' -benchtime=1x ./internal/faas/live/
echo "== zero-alloc regression guard (non-race: AllocsPerRun)"
# The race run above skips these: the detector's instrumentation
# perturbs allocation counts. This non-race pass asserts the pooled
# copy and the []byte shim stay at zero heap allocations per request.
go test -run 'ZeroAlloc' -count=1 ./internal/faas/live/
echo "== load-generator smoke (2s self-hosted run)"
# hotc-load boots an in-process daemon on a loopback socket and drives
# it open-loop for 2s at a non-saturating rate: the run must complete
# with non-zero goodput and zero 5xx, proving the admission tier and
# the generator itself against a real socket path.
LOADTMP="$(mktemp -d)"
trap 'rm -rf "$LOADTMP"' EXIT
go build -o "$LOADTMP/hotc-load" ./cmd/hotc-load
"$LOADTMP/hotc-load" -rate 50 -duration 2s -assert-min-ok 0.9 -assert-max-5xx 0 \
	-out "$LOADTMP/smoke.json"
echo "== metric-name lint"
./scripts/lint-metrics.sh
echo "verify: OK"
