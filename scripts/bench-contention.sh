#!/bin/sh
# Runs the hot-path contention benchmark suite (gateway sharding + obs
# fast path) and writes the averaged results to BENCH_contention.json
# at the repo root, alongside the fixed pre-sharding baseline so every
# regenerated file carries its own before/after comparison.
#
#   BENCH_COUNT=5 scripts/bench-contention.sh   # more repetitions
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_contention.json
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'GatewayParallel|ObsHotPath' -benchmem \
	-benchtime=1s -count "$COUNT" \
	./internal/faas/live/ ./internal/obs/ | tee "$TMP"

RESULTS="$(awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
	if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
	n[name]++
	ns[name] += $3
	for (i = 4; i <= NF; i++) {
		if ($i == "B/op")      b[name] += $(i-1)
		if ($i == "allocs/op") a[name] += $(i-1)
	}
}
END {
	for (j = 1; j <= k; j++) {
		name = order[j]
		printf "    \"%s\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}%s\n", \
			name, ns[name]/n[name], b[name]/n[name], a[name]/n[name], (j < k ? "," : "")
	}
}' "$TMP")"

GOVER="$(go env GOVERSION)"
CPUS="$(go env GOMAXPROCS 2>/dev/null || echo unknown)"

cat > "$OUT" <<EOF
{
  "generated_by": "scripts/bench-contention.sh",
  "go": "$GOVER",
  "benchtime": "1s",
  "count": $COUNT,
  "note": "e2e variants include the real watchdog TCP round trip (syscall-bound on small hosts); hotpath variants isolate the gateway bookkeeping the per-function sharding de-serializes.",
  "results": {
$RESULTS
  },
  "baseline_before_sharding": {
    "note": "Seed tree (single gateway mutex, mutex-guarded obs series), 1-CPU Intel Xeon @ 2.10GHz, recorded 2026-08-05. hotpath bookkeeping loop measured against the pre-sharding globals.",
    "results": {
      "BenchmarkGatewayParallel/e2e_1workers_1fns": {"ns_per_op": 41028, "bytes_per_op": 14700, "allocs_per_op": 117},
      "BenchmarkGatewayParallel/e2e_8workers_4fns": {"ns_per_op": 47172, "bytes_per_op": 14700, "allocs_per_op": 117},
      "BenchmarkGatewayParallel/e2e_16workers_4fns": {"ns_per_op": 53669, "bytes_per_op": 14700, "allocs_per_op": 117},
      "BenchmarkGatewayParallel/hotpath_1workers_1fns": {"ns_per_op": 527.3, "bytes_per_op": 8, "allocs_per_op": 1},
      "BenchmarkGatewayParallel/hotpath_8workers_4fns": {"ns_per_op": 585.8, "bytes_per_op": 8, "allocs_per_op": 1},
      "BenchmarkObsHotPath/counter_cached_handle": {"ns_per_op": 17.7, "bytes_per_op": 0, "allocs_per_op": 0},
      "BenchmarkObsHotPath/counter_with_lookup": {"ns_per_op": 38.4, "bytes_per_op": 0, "allocs_per_op": 0},
      "BenchmarkObsHotPath/gauge_cached_handle": {"ns_per_op": 18.1, "bytes_per_op": 0, "allocs_per_op": 0},
      "BenchmarkObsHotPath/histogram_cached_handle": {"ns_per_op": 22.8, "bytes_per_op": 0, "allocs_per_op": 0},
      "BenchmarkObsHotPath/histogram_with_lookup": {"ns_per_op": 44.6, "bytes_per_op": 0, "allocs_per_op": 0}
    }
  }
}
EOF

echo "wrote $OUT"
