#!/bin/sh
# Lint: every metric name registered in non-test Go source must match
# hotc_[a-z_]+ — the same rule obs.Registry enforces at runtime, caught
# here before anything runs.
set -eu
cd "$(dirname "$0")/.."

# Pull the first string-literal argument of every registry constructor
# call (Counter/Gauge/Histogram and their Vec forms) outside _test.go
# files and the obs package itself (whose sources mention the rule).
bad=$(grep -rn --include='*.go' --exclude='*_test.go' \
        -E '\.(Counter|Gauge|Histogram|CounterVec|GaugeVec|HistogramVec)\("' \
        cmd internal *.go 2>/dev/null |
      grep -v '^internal/obs/' |
      sed -E 's/.*\.(Counter|Gauge|Histogram|CounterVec|GaugeVec|HistogramVec)\("([^"]*)".*/\1 \2/' |
      awk '$2 !~ /^hotc_[a-z_]+$/ {print}' || true)

if [ -n "$bad" ]; then
    echo "lint-metrics: metric names must match hotc_[a-z_]+:" >&2
    echo "$bad" >&2
    exit 1
fi

# The tracing/SLO observability surface is part of the public contract:
# fail if a refactor silently drops one of its metric families.
for fam in hotc_trace_kept_total hotc_trace_sampled_out_total \
           hotc_trace_ring_dropped_total hotc_slo_burn_rate \
           hotc_slo_bad_fraction hotc_slo_breach hotc_slo_budget \
           hotc_build_info hotc_uptime_seconds \
           hotc_coldpath_boots_total hotc_coldpath_phase_ms \
           hotc_coldpath_generic_idle hotc_coldpath_refills_total \
           hotc_coldpath_generic_reaped_total \
           hotc_coldpath_pull_skipped_mb_total \
           hotc_share_leases_total hotc_share_lenders \
           hotc_share_renters hotc_share_boot_phase_ms; do
    if ! grep -rq --include='*.go' --exclude='*_test.go' "\"$fam\"" cmd internal; then
        echo "lint-metrics: required metric family $fam is not registered anywhere" >&2
        exit 1
    fi
done
echo "lint-metrics: OK"
