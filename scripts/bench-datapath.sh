#!/bin/sh
# Runs the gateway data-path throughput suite (pooled streaming copy
# vs the []byte compat shim, 1 KiB to 4 MiB payloads) and writes the
# averaged results to BENCH_datapath.json at the repo root, alongside
# the fixed pre-streaming baseline so every regenerated file carries
# its own before/after comparison.
#
#   BENCH_COUNT=5 scripts/bench-datapath.sh   # more repetitions
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_datapath.json
COUNT="${BENCH_COUNT:-3}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'GatewayThroughput' -benchmem \
	-benchtime=1s -count "$COUNT" \
	./internal/faas/live/ | tee "$TMP"

RESULTS="$(awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)        # strip the GOMAXPROCS suffix
	if (!(name in seen)) { order[++k] = name; seen[name] = 1 }
	n[name]++
	ns[name] += $3
	for (i = 4; i <= NF; i++) {
		if ($i == "MB/s")      mb[name] += $(i-1)
		if ($i == "B/op")      b[name] += $(i-1)
		if ($i == "allocs/op") a[name] += $(i-1)
	}
}
END {
	for (j = 1; j <= k; j++) {
		name = order[j]
		printf "    \"%s\": {\"ns_per_op\": %.1f, \"mb_per_s\": %.2f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f}%s\n", \
			name, ns[name]/n[name], mb[name]/n[name], b[name]/n[name], a[name]/n[name], (j < k ? "," : "")
	}
}' "$TMP")"

GOVER="$(go env GOVERSION)"

cat > "$OUT" <<EOF
{
  "generated_by": "scripts/bench-datapath.sh",
  "go": "$GOVER",
  "benchtime": "1s",
  "count": $COUNT,
  "note": "Full gateway data path: handle -> watchdog TCP round trip -> response copy, echo payloads. bytes_* goes through the pooled []byte compat shim; stream_* uses a StreamHandler so no stage buffers the payload.",
  "results": {
$RESULTS
  },
  "baseline_before_streaming": {
    "note": "Seed tree (io.ReadAll buffer-then-write proxy, per-request allocations), 1-CPU Intel Xeon @ 2.10GHz, recorded 2026-08-06, benchtime=2s. Streaming handlers did not exist yet, so only the bytes_* shape has a before.",
    "results": {
      "BenchmarkGatewayThroughput/bytes_1KiB": {"ns_per_op": 42635, "mb_per_s": 24.02, "bytes_per_op": 18676, "allocs_per_op": 115},
      "BenchmarkGatewayThroughput/bytes_64KiB": {"ns_per_op": 275741, "mb_per_s": 237.67, "bytes_per_op": 583171, "allocs_per_op": 145},
      "BenchmarkGatewayThroughput/bytes_1MiB": {"ns_per_op": 5061086, "mb_per_s": 207.18, "bytes_per_op": 10540563, "allocs_per_op": 204},
      "BenchmarkGatewayThroughput/bytes_4MiB": {"ns_per_op": 13544474, "mb_per_s": 309.67, "bytes_per_op": 42276361, "allocs_per_op": 216}
    }
  }
}
EOF

echo "wrote $OUT"
