#!/bin/sh
# Cold-path anatomy bench: the same open-loop load driven through three
# boot configurations, written to BENCH_coldpath.json at the repo root.
#
#   baseline_full_cold  every cold start pays the whole monolithic boot
#                       (pull + runtime init + app init) — the
#                       pre-prefork gateway
#   layer_cache         functions share python:3.8; after the first
#                       boot the pull phase is skipped for cached
#                       layers, runtime + app init still paid
#   prefork             generic pre-forked watchdogs pre-pay runtime
#                       init off the request path; a cold start pays
#                       only cache-scaled pull + app init
#
# The load shape forces recurring cold starts: arrivals round-robin
# over 4 function copies with a keep-alive shorter than each copy's
# inter-arrival gap, so warm instances keep expiring between requests.
# hotc-load classifies every 2xx by X-Hotc-Reused and reports cold and
# warm percentiles separately; cold p50 is the number under test. The
# headline claim: prefork cuts cold-start p50 by >= 5x versus the full
# cold baseline.
#
#   BENCH_DURATION=20s scripts/bench-coldpath.sh   # longer points
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_coldpath.json
DURATION="${BENCH_DURATION:-10s}"
RATE="${BENCH_RATE:-8}"
COLD_MS=400
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

go build -o "$TMPDIR/hotc-load" ./cmd/hotc-load

point() { # $1 = output basename, remaining args = extra hotc-load flags
	name="$1"; shift
	echo "== $name" >&2
	"$TMPDIR/hotc-load" -rate "$RATE" -duration "$DURATION" \
		-functions 4 -cold-start-ms "$COLD_MS" -body 5 \
		-keepalive 250ms -reap-interval 100ms \
		-out "$TMPDIR/$name.json" "$@" >&2
}

# cold_p50 pulls latency_ms_cold.p50 out of a report (MarshalIndent
# puts each key on its own line inside the block).
cold_p50() {
	sed -n '/"latency_ms_cold"/,/}/s/.*"p50": \([0-9.]*\).*/\1/p' "$TMPDIR/$1.json" | head -n 1
}

point baseline_full_cold
point layer_cache -image python:3.8
point prefork -image python:3.8 -prefork -prefork-size 8 -prefork-boot-ms 120

BASE_P50="$(cold_p50 baseline_full_cold)"
CACHE_P50="$(cold_p50 layer_cache)"
PREFORK_P50="$(cold_p50 prefork)"
SPEEDUP="$(awk "BEGIN { printf \"%.1f\", $BASE_P50 / $PREFORK_P50 }")"
GOVER="$(go env GOVERSION)"

cat > "$OUT" <<EOF
{
  "generated_by": "scripts/bench-coldpath.sh",
  "go": "$GOVER",
  "duration_per_point": "$DURATION",
  "note": "Open-loop load (rate ${RATE}/s round-robin over 4 function copies, 5ms service) against a self-hosted daemon over loopback TCP, coldStartMs ${COLD_MS} split 55/30/15 into pull/runtime/app. Keep-alive 250ms is shorter than each copy's inter-arrival gap, so cold starts recur throughout. Cold vs warm classified per response by X-Hotc-Reused; latency_ms_cold.p50 is the number under test. baseline_full_cold is the pre-prefork gateway (no image, every cold boot pays all three phases); layer_cache shares python:3.8 across the copies so cached layers skip the pull phase; prefork adds the generic pre-forked pool (size 8, 120ms generic boot paid off the request path) so cold starts pay only cache-scaled pull + app init.",
  "cold_p50_ms": {
    "baseline_full_cold": $BASE_P50,
    "layer_cache": $CACHE_P50,
    "prefork": $PREFORK_P50
  },
  "prefork_speedup_vs_baseline": $SPEEDUP,
  "claims": [
    "prefork cuts cold-start p50 by >= 5x versus the full-cold baseline (runtime init pre-paid, pull skipped for cached layers: only app init remains)",
    "the layer cache alone removes the pull share (55%) from every cold start after the first boot of the shared image",
    "warm-hit latency is unchanged across all three configurations: the fast cold path adds nothing to the reuse path",
    "generic-pool refills never run on the request path: cold latency under prefork is below the 120ms generic boot itself"
  ],
  "baseline_full_cold": $(sed 's/^/  /' "$TMPDIR/baseline_full_cold.json" | sed '1s/^  //'),
  "layer_cache": $(sed 's/^/  /' "$TMPDIR/layer_cache.json" | sed '1s/^  //'),
  "prefork": $(sed 's/^/  /' "$TMPDIR/prefork.json" | sed '1s/^  //')
}
EOF

echo "wrote $OUT (cold p50: baseline=${BASE_P50}ms cache=${CACHE_P50}ms prefork=${PREFORK_P50}ms, speedup=${SPEEDUP}x)"
awk "BEGIN { exit !($SPEEDUP >= 5.0) }" || {
	echo "bench-coldpath: WARNING speedup ${SPEEDUP}x below the 5x claim" >&2
	exit 1
}
