#!/bin/sh
# Inter-function sharing bench: the same skewed open-loop load driven
# through three runtime-reuse configurations, written to
# BENCH_sharing.json at the repo root.
#
#   keepalive_only   warm reuse within each function only; every warm
#                    miss pays the full monolithic cold boot
#   prefork          the generic pre-forked pool: a warm miss
#                    specializes a generic watchdog and pays pull +
#                    app init
#   prefork_sharing  prefork plus inter-function sharing: a warm miss
#                    first tries to rent another function's idle
#                    instance, paying only volume wipe + app init
#                    (same image = no pull at all)
#
# The load shape is deliberately skewed (Pagurus's motivating case):
# arrivals cycle over 4 function copies with weights 8:1:1:1 and a
# keep-alive shorter than the light copies' inter-arrival gaps, so the
# heavy copy stays warm with idle surplus while the light copies go
# cold on almost every arrival — exactly when renting a neighbour's
# idle instance should beat booting. All copies run python:3.8 with
# the host layer cache off: every generic specialization or full cold
# boot pays the registry pull, while a same-image lease pays none —
# the layers are already inside the lender's container, which is the
# point of renting. hotc-load classifies every 2xx by X-Hotc-Boot into
# warm/rented/generic/cold modes with per-mode percentiles. The
# headline claims: sharing lowers the boot rate (generic+cold
# fraction) below prefork alone, and a rented boot's p50 undercuts the
# generic handoff's.
#
#   BENCH_DURATION=20s scripts/bench-sharing.sh   # longer points
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_sharing.json
DURATION="${BENCH_DURATION:-12s}"
RATE="${BENCH_RATE:-8}"
COLD_MS=400
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

go build -o "$TMPDIR/hotc-load" ./cmd/hotc-load

point() { # $1 = output basename, remaining args = extra hotc-load flags
	name="$1"; shift
	echo "== $name" >&2
	"$TMPDIR/hotc-load" -rate "$RATE" -duration "$DURATION" \
		-functions 4 -fn-weights 8,1,1,1 -cold-start-ms "$COLD_MS" -body 5 \
		-image python:3.8 -layer-cache=false \
		-keepalive 250ms -reap-interval 100ms \
		-out "$TMPDIR/$name.json" "$@" >&2
}

# mode_frac pulls mode_fractions.<mode> out of a report (0 when the
# mode never occurred).
mode_frac() { # $1 = basename, $2 = mode
	v="$(sed -n '/"mode_fractions"/,/}/s/.*"'"$2"'": \([0-9.e+-]*\),\{0,1\}.*/\1/p' "$TMPDIR/$1.json" | head -n 1)"
	echo "${v:-0}"
}

# mode_p50 pulls latency_ms_by_mode.<mode>.p50 (the '{' in the match
# distinguishes the per-mode block from the mode_fractions scalar).
mode_p50() { # $1 = basename, $2 = mode
	sed -n '/"'"$2"'": {/,/}/s/.*"p50": \([0-9.]*\),\{0,1\}.*/\1/p' "$TMPDIR/$1.json" | head -n 1
}

point keepalive_only
point prefork -prefork -prefork-size 8 -prefork-boot-ms 120
point prefork_sharing -prefork -prefork-size 8 -prefork-boot-ms 120 \
	-share -share-idle-grace 50ms

# Boot rate = the fraction of served requests that paid any boot at
# all (generic handoff or full cold); warm reuse and rented zygotes
# are the two ways a request avoids one.
rate_of() { # $1 = basename
	c="$(mode_frac "$1" cold)"
	g="$(mode_frac "$1" generic)"
	awk "BEGIN { printf \"%.4f\", $c + $g }"
}

KA_RATE="$(rate_of keepalive_only)"
PF_RATE="$(rate_of prefork)"
SH_RATE="$(rate_of prefork_sharing)"
RENT_FRAC="$(mode_frac prefork_sharing rented)"
RENT_P50="$(mode_p50 prefork_sharing rented)"
GEN_P50="$(mode_p50 prefork generic)"
GOVER="$(go env GOVERSION)"

cat > "$OUT" <<EOF
{
  "generated_by": "scripts/bench-sharing.sh",
  "go": "$GOVER",
  "duration_per_point": "$DURATION",
  "note": "Open-loop load (rate ${RATE}/s cycling over 4 function copies with weights 8:1:1:1, 5ms service) against a self-hosted daemon over loopback TCP, coldStartMs ${COLD_MS} split 55/30/15 into pull/runtime/app, keep-alive 250ms. All copies run python:3.8 with the host layer cache disabled, so every generic specialization or full cold boot pays the registry pull while a same-image lease pays none (the layers are already inside the lender's container). The heavy copy stays warm; the light copies' inter-arrival gaps exceed the keep-alive, so their arrivals are warm misses throughout. Every 2xx is classified by X-Hotc-Boot into warm/rented/generic/cold with per-mode latency percentiles. boot_rate is the generic+cold mode fraction: the share of requests that paid a boot. keepalive_only is per-function reuse alone; prefork arms the generic pre-forked pool (size 8, 120ms generic boot off the request path); prefork_sharing additionally lets a warm miss rent another function's idle instance (same-image policy, 5ms wipe, 50ms idle grace) and pay only wipe + app init.",
  "boot_rate": {
    "keepalive_only": $KA_RATE,
    "prefork": $PF_RATE,
    "prefork_sharing": $SH_RATE
  },
  "rented_fraction": $RENT_FRAC,
  "rented_p50_ms": $RENT_P50,
  "generic_p50_ms": $GEN_P50,
  "claims": [
    "prefork+sharing serves a smaller fraction of requests from any boot (generic or full cold) than prefork alone: rented zygotes absorb warm misses that the generic pool would otherwise pay pull+app for",
    "a rented boot's p50 undercuts the generic handoff's: a same-image lease pays volume wipe + app init only, while a generic specialization still pays the image pull",
    "warm-hit latency is unchanged across all three configurations: the lender scan runs only on the cold path",
    "keep-alive alone leaves every light-copy arrival paying the full monolithic boot"
  ],
  "keepalive_only": $(sed 's/^/  /' "$TMPDIR/keepalive_only.json" | sed '1s/^  //'),
  "prefork": $(sed 's/^/  /' "$TMPDIR/prefork.json" | sed '1s/^  //'),
  "prefork_sharing": $(sed 's/^/  /' "$TMPDIR/prefork_sharing.json" | sed '1s/^  //')
}
EOF

echo "wrote $OUT (boot rate: keepalive=${KA_RATE} prefork=${PF_RATE} sharing=${SH_RATE}; rented p50=${RENT_P50}ms vs generic p50=${GEN_P50}ms, rented fraction=${RENT_FRAC})"
awk "BEGIN { exit !($SH_RATE < $PF_RATE) }" || {
	echo "bench-sharing: WARNING sharing boot rate ${SH_RATE} not below prefork's ${PF_RATE}" >&2
	exit 1
}
awk "BEGIN { exit !($RENT_P50 < $GEN_P50) }" || {
	echo "bench-sharing: WARNING rented p50 ${RENT_P50}ms not below generic p50 ${GEN_P50}ms" >&2
	exit 1
}
awk "BEGIN { exit !($RENT_FRAC > 0) }" || {
	echo "bench-sharing: WARNING no rented boots observed" >&2
	exit 1
}
