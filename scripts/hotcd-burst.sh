#!/bin/sh
# Demo: drive a bursty load against a live hotcd and watch the warm
# pool track demand. Starts its own daemon on a scratch port with a
# fast control interval, fires bursts of concurrent invocations with
# quiet gaps between them, and samples /system/stats after each phase:
# warm count should rise toward the burst's concurrency, never exceed
# -max-warm, and drain back down across the quiet periods.
#
# Usage: scripts/hotcd-burst.sh [addr] [burst-size] [rounds]
set -eu
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:8931}"
BURST="${2:-6}"
ROUNDS="${3:-4}"
MAXWARM=4
BASE="http://$ADDR"

go build -o /tmp/hotcd ./cmd/hotcd
/tmp/hotcd -addr "$ADDR" -predictor es+markov -control-interval 500ms \
	-keepalive 30s -max-warm "$MAXWARM" -reap-interval 250ms &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM

for i in $(seq 1 50); do
	curl -fsS "$BASE/system/stats" >/dev/null 2>&1 && break
	sleep 0.1
done

sample() {
	curl -fsS "$BASE/system/stats" |
		sed -n 's/.*"warmInstances":\({[^}]*}\).*/warm=\1/p'
	curl -fsS "$BASE/system/stats" |
		sed -n 's/.*"forecast":\({[^}]*}\).*/forecast=\1/p'
}

echo "== bursty load: $ROUNDS rounds of $BURST concurrent invocations (max-warm $MAXWARM)"
for r in $(seq 1 "$ROUNDS"); do
	echo "-- round $r: burst"
	for i in $(seq 1 "$BURST"); do
		curl -fsS -XPOST "$BASE/function/echo" -d "burst-$r-$i" >/dev/null &
	done
	wait_jobs=$(jobs -p | grep -v "^$PID$" || true)
	[ -n "$wait_jobs" ] && wait $wait_jobs || true
	sleep 1.2 # let the controller observe the burst and provision
	sample
done

echo "-- quiet period: controller should retire the pool with hysteresis"
for i in 1 2 3 4; do
	sleep 1.5
	sample
done

echo "-- prediction traces"
curl -fsS "$BASE/system/predictions"
echo
echo "== done"
