#!/bin/sh
# Saturation/overload curves for the live gateway: open-loop load from
# hotc-load swept from well under capacity to 2x over it, once with
# admission control armed and once with it off (the pre-admission
# baseline), written to BENCH_saturation.json at the repo root.
#
# Capacity is set by the admission in-flight cap and the sleep
# builtin's service time: 8 in flight x 20 ms = ~400 req/s. The claims
# the file should show: goodput plateaus at capacity instead of
# collapsing, the excess is rejected with 429 + Retry-After (no 5xx
# storm), p99 stays bounded past saturation, and the warm pool stays
# at the cap instead of ballooning.
#
#   BENCH_DURATION=10s scripts/bench-saturation.sh   # longer points
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_saturation.json
DURATION="${BENCH_DURATION:-5s}"
RATES="${BENCH_RATES:-100 200 300 400 600 800}"
TMPDIR="$(mktemp -d)"
trap 'rm -rf "$TMPDIR"' EXIT

go build -o "$TMPDIR/hotc-load" ./cmd/hotc-load

sweep() { # $1 = label, remaining args = extra hotc-load flags
	label="$1"; shift
	first=1
	for rate in $RATES; do
		echo "== $label rate=$rate" >&2
		"$TMPDIR/hotc-load" -rate "$rate" -duration "$DURATION" \
			-out "$TMPDIR/point.json" "$@" >&2
		[ "$first" = 1 ] || printf ',\n'
		first=0
		sed 's/^/      /' "$TMPDIR/point.json"
	done
}

ADMISSION="$(sweep admission -max-inflight 8 -queue-depth 16 -deadline-ms 500)"
BASELINE="$(sweep no-admission -max-inflight 0)"

GOVER="$(go env GOVERSION)"

cat > "$OUT" <<EOF
{
  "generated_by": "scripts/bench-saturation.sh",
  "go": "$GOVER",
  "duration_per_point": "$DURATION",
  "note": "Open-loop saturation sweep against a self-hosted daemon over loopback TCP, sleep builtin (20ms service, 25ms cold start). Capacity with admission is max-inflight 8 x 20ms = ~400 req/s. 'admission' arms -max-inflight 8 -queue-depth 16 -deadline-ms 500; 'baseline_no_admission' is the pre-admission gateway (unbounded concurrency, no queue, no deadline).",
  "claims": [
    "past saturation, goodput plateaus at capacity and every excess request is rejected 429 with Retry-After (no 5xx)",
    "p99 at 2x capacity stays within 2x of p99 at capacity (the queue is bounded, so waits are bounded)",
    "warm instances stay at the in-flight cap under admission; the baseline balloons its pool with the offered load"
  ],
  "admission": {
    "points": [
$ADMISSION
    ]
  },
  "baseline_no_admission": {
    "points": [
$BASELINE
    ]
  }
}
EOF

echo "wrote $OUT"
