package hotc_test

// End-to-end integration tests across the public API: whole-day trace
// replays under every policy, profile comparisons, chains and
// concurrency limits composed together. These complement the
// per-package unit tests by asserting cross-policy orderings the paper
// depends on.

import (
	"fmt"
	"testing"
	"time"

	"hotc"
)

// replayCampus runs two hours of the scaled campus trace under a
// policy and returns the summary plus the simulation for inspection.
func replayCampus(t *testing.T, policy hotc.Policy) (hotc.Stats, *hotc.Simulation) {
	t.Helper()
	sim, err := hotc.NewSimulation(hotc.Config{
		Policy:          policy,
		Seed:            5,
		KeepAliveWindow: 15 * time.Minute,
		ControlInterval: time.Minute,
		LocalImages:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Close)
	app, err := hotc.AppQR("python")
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Deploy(hotc.FunctionSpec{
		Name:    "svc",
		Runtime: hotc.Runtime{Image: "python:3.8"},
		App:     app,
	}); err != nil {
		t.Fatal(err)
	}
	results, err := sim.Replay(hotc.CampusWorkload(9, 30, 120, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s request failed: %v", policy, r.Err)
		}
	}
	return hotc.Summarize(results), sim
}

// The paper's central ordering: HotC ≈ always-warm policies on latency,
// and both beat cold by a wide margin.
func TestIntegrationPolicyOrderingOnCampusTrace(t *testing.T) {
	cold, _ := replayCampus(t, hotc.PolicyCold)
	keep, _ := replayCampus(t, hotc.PolicyKeepAlive)
	hot, hotSim := replayCampus(t, hotc.PolicyHotC)

	if cold.Requests == 0 || cold.Requests != keep.Requests || keep.Requests != hot.Requests {
		t.Fatalf("request counts diverge: %d/%d/%d", cold.Requests, keep.Requests, hot.Requests)
	}
	if hot.MeanMS > 0.3*cold.MeanMS {
		t.Fatalf("HotC mean %.1fms should be well below cold %.1fms", hot.MeanMS, cold.MeanMS)
	}
	if hot.MeanMS > 1.3*keep.MeanMS {
		t.Fatalf("HotC mean %.1fms should be near keep-alive %.1fms", hot.MeanMS, keep.MeanMS)
	}
	// Cold starts: cold policy pays one per request; HotC only a few.
	if cold.ColdStarts != cold.Requests {
		t.Fatalf("cold policy cold starts = %d of %d", cold.ColdStarts, cold.Requests)
	}
	if float64(hot.ColdStarts) > 0.1*float64(hot.Requests) {
		t.Fatalf("HotC cold starts = %d of %d, want < 10%%", hot.ColdStarts, hot.Requests)
	}
	// The HotC pool stays modest on this single-function trace.
	if live := hotSim.LiveContainers(); live > 10 {
		t.Fatalf("HotC retained %d containers", live)
	}
}

// The same workload on the edge profile: everything is slower, but the
// reuse benefit survives (Fig. 8's argument).
func TestIntegrationEdgeProfileOrdering(t *testing.T) {
	run := func(policy hotc.Policy) hotc.Stats {
		sim, err := hotc.NewSimulation(hotc.Config{
			Profile:     hotc.ProfileEdgePi,
			Policy:      policy,
			Seed:        6,
			LocalImages: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		app, _ := hotc.AppQR("python")
		if err := sim.Deploy(hotc.FunctionSpec{Name: "svc", Runtime: hotc.Runtime{Image: "python:3.8"}, App: app}); err != nil {
			t.Fatal(err)
		}
		results, err := sim.Replay(hotc.SerialWorkload(time.Minute, 10), nil)
		if err != nil {
			t.Fatal(err)
		}
		return hotc.Summarize(results)
	}
	cold := run(hotc.PolicyCold)
	hot := run(hotc.PolicyHotC)
	if hot.MeanMS >= cold.MeanMS {
		t.Fatalf("edge HotC %.1fms should beat cold %.1fms", hot.MeanMS, cold.MeanMS)
	}
	// Edge cold latency dwarfs the server's (scales ~4-10x).
	serverCold, _ := replayCampus(t, hotc.PolicyCold)
	if cold.MeanMS < serverCold.MeanMS {
		t.Fatalf("edge cold %.1fms should exceed server cold %.1fms", cold.MeanMS, serverCold.MeanMS)
	}
}

// Chains and concurrency limits compose: a capped pipeline stage
// serializes whole-chain traversals without deadlock.
func TestIntegrationChainWithConcurrencyLimit(t *testing.T) {
	sim, err := hotc.NewSimulation(hotc.Config{Policy: hotc.PolicyHotC, LocalImages: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	app, _ := hotc.AppQR("python")
	stages := []string{"ingest", "transform"}
	for i, name := range stages {
		spec := hotc.FunctionSpec{
			Name:    name,
			Runtime: hotc.Runtime{Image: "python:3.8", Env: []string{fmt.Sprintf("S=%d", i)}},
			App:     app,
		}
		if i == 1 {
			spec.MaxConcurrency = 1 // bottleneck stage
		}
		if err := sim.Deploy(spec); err != nil {
			t.Fatal(err)
		}
	}
	// Three chains arrive simultaneously; the bottleneck stage must
	// serialize them but everything completes.
	w := hotc.Workload{{At: 0}, {At: 0}, {At: 0}}
	results, err := sim.ReplayChain(w, stages)
	if err != nil {
		t.Fatal(err)
	}
	var latencies []time.Duration
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("chain %d: %v", i, r.Err)
		}
		if r.Stages != 2 {
			t.Fatalf("chain %d stages = %d", i, r.Stages)
		}
		latencies = append(latencies, r.Latency)
	}
	// Serialization at the bottleneck spreads completion times.
	same := latencies[0] == latencies[1] && latencies[1] == latencies[2]
	if same {
		t.Fatalf("expected spread from the capped stage, got %v", latencies)
	}
}

// Relaxed matching through the full public surface.
func TestIntegrationRelaxedMatching(t *testing.T) {
	sim, err := hotc.NewSimulation(hotc.Config{
		Policy:                hotc.PolicyHotC,
		EnableRelaxedMatching: true,
		LocalImages:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	app, _ := hotc.AppQR("python")
	for i := 0; i < 5; i++ {
		err := sim.Deploy(hotc.FunctionSpec{
			Name:    fmt.Sprintf("fn-%d", i),
			Runtime: hotc.Runtime{Image: "python:3.8", Env: []string{fmt.Sprintf("V=%d", i)}},
			App:     app,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Round-robin across the five distinct-env functions, serially.
	var w hotc.Workload
	for i := 0; i < 10; i++ {
		w = append(w, hotc.Workload{{At: time.Duration(i) * 30 * time.Second, Class: i % 5, Round: i}}...)
	}
	results, err := sim.Replay(w, func(c int) string { return fmt.Sprintf("fn-%d", c) })
	if err != nil {
		t.Fatal(err)
	}
	st := hotc.Summarize(results)
	// With relaxed matching only the very first request needs a fresh
	// container; the rest adjust the same runtime at exec time.
	if st.ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1 with relaxed matching", st.ColdStarts)
	}
}

// The same seed gives byte-identical latency sequences: the
// determinism guarantee the reproduction rests on.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() []time.Duration {
		sim, err := hotc.NewSimulation(hotc.Config{Policy: hotc.PolicyHotC, Seed: 77, LocalImages: true})
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		app, _ := hotc.AppQR("node")
		if err := sim.Deploy(hotc.FunctionSpec{Name: "svc", Runtime: hotc.Runtime{Image: "node:10"}, App: app}); err != nil {
			t.Fatal(err)
		}
		results, err := sim.Replay(hotc.BurstWorkload(4, 5, []int{2}, 5, 20*time.Second), nil)
		if err != nil {
			t.Fatal(err)
		}
		var lats []time.Duration
		for _, r := range results {
			lats = append(lats, r.Latency)
		}
		return lats
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths diverge")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
}

// Satellite of the resilience PR: at a 5% create-fail + 1% exec-crash
// rate HotC must complete every request — faults are absorbed by
// retries, fallbacks and quarantine, never surfaced to the client.
func TestIntegrationChaosZeroClientErrors(t *testing.T) {
	res := hotc.DefaultResilience()
	sim, err := hotc.NewSimulation(hotc.Config{
		Policy:      hotc.PolicyHotC,
		Seed:        13,
		LocalImages: true,
		Faults: &hotc.FaultsConfig{
			Seed: 13,
			Rules: []hotc.FaultRule{{
				CreateFailRate: 0.05,
				ExecCrashRate:  0.01,
			}},
		},
		Resilience: &res,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	app, err := hotc.AppQR("python")
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Deploy(hotc.FunctionSpec{
		Name:    "svc",
		Runtime: hotc.Runtime{Image: "python:3.8"},
		App:     app,
	}); err != nil {
		t.Fatal(err)
	}
	// Bursty arrivals keep the create path hot, so the 5% rate actually
	// bites; a serial trickle would hide behind one warm container.
	results, err := sim.Replay(hotc.BurstWorkload(3, 6, []int{2, 5, 8}, 10, 20*time.Second), nil)
	if err != nil {
		t.Fatal(err)
	}
	troubled := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d surfaced an error to the client: %v", i, r.Err)
		}
		if r.Faults > 0 {
			troubled++
		}
	}
	st := sim.FaultStats()
	if st.Total() == 0 {
		t.Fatal("no faults injected; the test exercises nothing")
	}
	if st.CreateFails == 0 {
		t.Fatal("no create faults at a 5% rate over a bursty workload")
	}
	if troubled == 0 {
		t.Fatal("faults were injected but no request carries a fault annotation")
	}
	counters := sim.ResilienceCounters()
	if counters["acquire.retries"] == 0 {
		t.Fatalf("create faults were injected but the gateway never retried: %v", counters)
	}
	if counters["requests.failed"] != 0 {
		t.Fatalf("gateway recorded failed requests: %v", counters)
	}
}
