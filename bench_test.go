package hotc

// One testing.B benchmark per figure of the paper's evaluation. Each
// benchmark regenerates the corresponding figure's data via the
// internal bench drivers and reports a headline metric from it as a
// custom benchmark unit, so `go test -bench=.` doubles as the
// reproduction harness (cmd/hotc-bench prints the full tables).

import (
	"testing"
	"time"

	"hotc/internal/bench"
	"hotc/internal/metrics"
	"hotc/internal/predictor"
	"hotc/internal/rng"
	"hotc/internal/trace"
)

// reportNote attaches the first figure note to the benchmark output.
func runFigure(b *testing.B, fn func() *bench.Report) *bench.Report {
	b.Helper()
	var rep *bench.Report
	for i := 0; i < b.N; i++ {
		rep = fn()
	}
	if rep == nil || len(rep.Tables) == 0 {
		b.Fatal("figure produced no tables")
	}
	return rep
}

func BenchmarkFig01LambdaColdStart(b *testing.B) {
	rep := runFigure(b, func() *bench.Report { return bench.Fig01(6) })
	_ = rep
}

func BenchmarkFig02DockerfileCorpus(b *testing.B) {
	runFigure(b, func() *bench.Report { return bench.Fig02(2000) })
}

func BenchmarkFig04Startup(b *testing.B) {
	runFigure(b, bench.Fig04)
}

func BenchmarkFig05Breakdown(b *testing.B) {
	runFigure(b, bench.Fig05)
}

func BenchmarkFig08ImageRecognition(b *testing.B) {
	runFigure(b, bench.Fig08)
}

func BenchmarkFig09WebLatency(b *testing.B) {
	runFigure(b, func() *bench.Report { return bench.Fig09(40) })
}

func BenchmarkFig10Prediction(b *testing.B) {
	runFigure(b, bench.Fig10)
}

func BenchmarkFig11CampusTrace(b *testing.B) {
	runFigure(b, bench.Fig11)
}

func BenchmarkFig12SerialParallel(b *testing.B) {
	runFigure(b, bench.Fig12)
}

func BenchmarkFig13Linear(b *testing.B) {
	runFigure(b, bench.Fig13)
}

func BenchmarkFig14ExpBurst(b *testing.B) {
	runFigure(b, bench.Fig14)
}

func BenchmarkFig15Overhead(b *testing.B) {
	runFigure(b, bench.Fig15)
}

func BenchmarkAblations(b *testing.B) {
	runFigure(b, bench.Ablations)
}

func BenchmarkPolicyShootout(b *testing.B) {
	runFigure(b, bench.PolicyShootout)
}

func BenchmarkClusterStudy(b *testing.B) {
	runFigure(b, bench.ClusterStudy)
}

func BenchmarkRelatedWork(b *testing.B) {
	runFigure(b, bench.RelatedWork)
}

// Micro-benchmarks of the hot paths, reported with allocations.

func BenchmarkPredictorCombined(b *testing.B) {
	src := rng.New(1)
	series := make([]float64, 512)
	for i := range series {
		series[i] = float64(src.Intn(40))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := predictor.Default()
		for _, v := range series {
			p.Observe(v)
			_ = p.Predict()
		}
	}
}

func BenchmarkRuntimeKeyDerivation(b *testing.B) {
	rt := Runtime{
		Image:   "python:3.8",
		Network: "bridge",
		Env:     []string{"A=1", "B=2", "C=3"},
		Volumes: []string{"/data:/data"},
		Cmd:     []string{"python", "app.py"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rt.Key()
	}
}

func BenchmarkGatewayThroughputWarm(b *testing.B) {
	// End-to-end simulated requests per benchmark op, steady warm
	// state under HotC.
	sim, err := NewSimulation(Config{Policy: PolicyHotC, LocalImages: true})
	if err != nil {
		b.Fatal(err)
	}
	defer sim.Close()
	app, err := AppQR("python")
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Deploy(FunctionSpec{Name: "qr", Runtime: Runtime{Image: "python:3.8"}, App: app}); err != nil {
		b.Fatal(err)
	}
	// Warm up.
	if _, err := sim.Replay(SerialWorkload(time.Second, 2), nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Replay(SerialWorkload(time.Second, 1), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampusTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = trace.Campus{Seed: 1, Scale: 10}.Generate()
	}
}

func BenchmarkSeriesPercentile(b *testing.B) {
	src := rng.New(2)
	var s metrics.Series
	for i := 0; i < 10000; i++ {
		s.Add(src.Float64() * 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(src.Float64() * 1000) // force re-sort
		_ = s.Percentile(99)
	}
}
