// Web QR over real sockets: a live net/http gateway and watchdog pool
// (the paper's Fig. 9 web application), serving an actual URL-to-text
// "QR" encoding function. The same function is served twice — once by
// a cold-start-per-request gateway and once by a runtime-reusing
// (HotC-style) gateway — and the measured wall-clock latencies are
// printed.
//
// Unlike the other examples this one exercises the real network stack:
// every request crosses two real TCP connections (client -> gateway,
// gateway -> watchdog).
//
// Run with:
//
//	go run ./examples/webqr
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"hotc/internal/faas/live"
)

// qrEncode is a stand-in QR encoder: it renders the URL into a tiny
// deterministic ASCII matrix (a real deployment would produce a PNG).
func qrEncode(body []byte) ([]byte, error) {
	url := strings.TrimSpace(string(body))
	if url == "" {
		return nil, fmt.Errorf("empty url")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "QR(%s)\n", url)
	h := 0
	for _, c := range url {
		h = h*31 + int(c)
	}
	for row := 0; row < 8; row++ {
		for col := 0; col < 8; col++ {
			if (h>>(uint(row*8+col)%31))&1 == 1 {
				b.WriteString("##")
			} else {
				b.WriteString("  ")
			}
		}
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

func run(reuse bool, requests int) {
	label := "cold-start per request"
	if reuse {
		label = "HotC-style runtime reuse"
	}
	g := live.NewGateway(reuse)
	if err := g.Register(live.Function{
		Name:      "url2qr",
		Handler:   qrEncode,
		ColdStart: 400 * time.Millisecond, // container boot + runtime + app init
	}); err != nil {
		log.Fatal(err)
	}
	base, err := g.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer g.Stop()

	fmt.Printf("--- %s ---\n", label)
	var total time.Duration
	for i := 0; i < requests; i++ {
		url := fmt.Sprintf("https://example.org/page/%d", i)
		t0 := time.Now()
		resp, err := http.Post(base+"/function/url2qr", "text/plain", strings.NewReader(url))
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			log.Fatalf("request %d failed: %v (%d) %s", i, err, resp.StatusCode, body)
		}
		lat := time.Since(t0)
		total += lat
		fmt.Printf("request %2d: %8.1fms  reused=%s\n",
			i+1, float64(lat)/float64(time.Millisecond), resp.Header.Get("X-Hotc-Reused"))
	}
	st := g.Stats()
	fmt.Printf("mean %.1fms over %d requests (%d cold starts)\n\n",
		float64(total)/float64(requests)/float64(time.Millisecond), st.Requests, st.ColdStarts)
}

func main() {
	const requests = 8
	run(false, requests)
	run(true, requests)
	fmt.Println("With reuse, only the first request pays the watchdog boot — the Fig. 9 effect on a real network stack.")
}
