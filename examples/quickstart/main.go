// Quickstart: deploy one serverless function, replay a serial request
// stream under HotC and under the default cold-start behaviour, and
// print what runtime reuse buys you.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"hotc"
)

func main() {
	app, err := hotc.AppQR("python")
	if err != nil {
		log.Fatal(err)
	}

	for _, policy := range []hotc.Policy{hotc.PolicyCold, hotc.PolicyHotC} {
		sim, err := hotc.NewSimulation(hotc.Config{
			Policy:      policy,
			Seed:        1,
			LocalImages: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		err = sim.Deploy(hotc.FunctionSpec{
			Name:    "url2qr",
			Runtime: hotc.Runtime{Image: "python:3.8", Network: "bridge"},
			App:     app,
		})
		if err != nil {
			log.Fatal(err)
		}

		// One request every 30 seconds for ten minutes — the paper's
		// Fig. 12(a) workload.
		results, err := sim.Replay(hotc.SerialWorkload(30*time.Second, 20), nil)
		if err != nil {
			log.Fatal(err)
		}

		st := hotc.Summarize(results)
		fmt.Printf("policy %-22s requests=%d cold=%d mean=%.1fms p99=%.1fms\n",
			sim.PolicyName(), st.Requests, st.ColdStarts, st.MeanMS, st.P99MS)
		for i, r := range results[:5] {
			mark := "warm (reused runtime)"
			if !r.Reused {
				mark = "COLD (new container)"
			}
			fmt.Printf("  request %d: %7.1fms  %s\n",
				i+1, float64(r.Latency)/float64(time.Millisecond), mark)
		}
		sim.Close()
		fmt.Println()
	}
	fmt.Println("HotC reuses the live container runtime, so only the very first request pays the cold start.")
}
