// Image pipeline: the paper's Fig. 3(a) motivating scenario — a user
// uploads a picture, which flows through a chain of serverless
// functions (upload -> compress -> watermark -> persist). Without
// reuse, a single user action can pay FOUR cold starts back to back;
// with HotC only the very first traversal does.
//
// Run with:
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"
	"time"

	"hotc"
)

func deployPipeline(sim *hotc.Simulation) ([]string, error) {
	type stage struct {
		name, image, lang string
	}
	stages := []stage{
		{"upload", "python:3.8", "python"},
		{"compress", "python:3.8", "python"},
		{"watermark", "node:10", "node"},
		{"persist", "golang:1.12", "go"},
	}
	names := make([]string, len(stages))
	for i, st := range stages {
		app, err := hotc.AppQR(st.lang) // small per-stage transformation
		if err != nil {
			return nil, err
		}
		err = sim.Deploy(hotc.FunctionSpec{
			Name:    st.name,
			Runtime: hotc.Runtime{Image: st.image, Env: []string{"STAGE=" + st.name}},
			App:     app,
		})
		if err != nil {
			return nil, err
		}
		names[i] = st.name
	}
	return names, nil
}

func run(policy hotc.Policy) {
	sim, err := hotc.NewSimulation(hotc.Config{Policy: policy, Seed: 4, LocalImages: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	stages, err := deployPipeline(sim)
	if err != nil {
		log.Fatal(err)
	}

	// A user uploads a photo every two minutes.
	results, err := sim.ReplayChain(hotc.SerialWorkload(2*time.Minute, 8), stages)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("--- %s ---\n", sim.PolicyName())
	for i, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("photo %d: %8.1fms end-to-end, %d/%d stages cold\n",
			i+1, float64(r.Latency)/float64(time.Millisecond), r.ColdStages, r.Stages)
	}
	fmt.Println()
}

func main() {
	run(hotc.PolicyCold)
	run(hotc.PolicyHotC)
	fmt.Println("A chained request multiplies the cold-start tax; runtime reuse pays it once per pipeline, not once per photo.")
}
