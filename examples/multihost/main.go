// Multi-host backend: the paper's §VII future work — "in a distributed
// system ... some host machines might become overloaded and we need to
// consider load balancing when reusing the hot runtime." A four-node
// HotC cluster serves a popular function under three routing policies,
// then survives a node failure mid-run.
//
// Run with:
//
//	go run ./examples/multihost
package main

import (
	"fmt"
	"log"
	"time"

	"hotc"
)

func newCluster(routing hotc.Routing) *hotc.ClusterSimulation {
	cs, err := hotc.NewClusterSimulation(hotc.ClusterConfig{
		Nodes:           4,
		Routing:         routing,
		Seed:            8,
		ControlInterval: 30 * time.Second,
		LocalImages:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	app, err := hotc.AppQR("python")
	if err != nil {
		log.Fatal(err)
	}
	if err := cs.Deploy(hotc.FunctionSpec{
		Name:    "popular",
		Runtime: hotc.Runtime{Image: "python:3.8"},
		App:     app,
	}); err != nil {
		log.Fatal(err)
	}
	return cs
}

func main() {
	workload := hotc.SerialWorkload(20*time.Second, 60)

	fmt.Printf("%-16s %12s %12s %12s  %s\n",
		"routing", "mean (ms)", "reuse", "imbalance", "served per node")
	for _, routing := range []hotc.Routing{
		hotc.RoutingRoundRobin, hotc.RoutingLeastLoaded, hotc.RoutingReuseAffinity,
	} {
		cs := newCluster(routing)
		results, err := cs.Replay(workload, nil)
		if err != nil {
			log.Fatal(err)
		}
		st := hotc.SummarizeCluster(results)
		fmt.Printf("%-16s %12.1f %11.1f%% %12.2f  %v\n",
			routing, st.MeanMS,
			100*float64(st.Reused)/float64(st.Requests),
			cs.LoadImbalance(), cs.ServedByNode())
		cs.Close()
	}

	// Node failure under affinity routing.
	cs := newCluster(hotc.RoutingReuseAffinity)
	defer cs.Close()
	half := hotc.SerialWorkload(20*time.Second, 30)
	results, err := cs.Replay(half, nil)
	if err != nil {
		log.Fatal(err)
	}
	servedBefore := cs.ServedByNode()
	cs.FailNode(0)
	results2, err := cs.Replay(half, nil)
	if err != nil {
		log.Fatal(err)
	}
	errs := 0
	for _, r := range append(results, results2...) {
		if r.Err != nil {
			errs++
		}
	}
	fmt.Printf("\nnode failure drill: %d errors; served before %v, after %v\n",
		errs, servedBefore, cs.ServedByNode())
	fmt.Println("Reuse-affinity keeps revisits on warm nodes; the failed node is routed around with a single re-warming cold start.")
}
