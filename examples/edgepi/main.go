// Edge deployment: replay three hours of the campus diurnal trace
// (Fig. 11) on the Raspberry Pi profile under every policy, printing
// latency, cold starts and the resources each policy holds — the
// paper's motivating edge scenario where a 1 GB device cannot afford
// an always-warm fleet.
//
// Run with:
//
//	go run ./examples/edgepi
package main

import (
	"fmt"
	"log"
	"time"

	"hotc"
)

func main() {
	app, err := hotc.AppQR("python")
	if err != nil {
		log.Fatal(err)
	}
	// Three hours of the trace, scaled down 40x to edge request rates,
	// spread over two function configurations.
	workload := hotc.CampusWorkload(11, 40, 180, 2)
	fmt.Printf("campus trace: %d requests over 3h on the edge-pi profile\n\n", len(workload))

	policies := []hotc.Policy{
		hotc.PolicyCold,
		hotc.PolicyKeepAlive,
		hotc.PolicyHistogram,
		hotc.PolicyHotC,
	}
	fmt.Printf("%-28s %10s %10s %8s %10s %10s\n",
		"policy", "mean(ms)", "p99(ms)", "cold", "live ctrs", "mem (MB)")
	for _, p := range policies {
		sim, err := hotc.NewSimulation(hotc.Config{
			Profile:         hotc.ProfileEdgePi,
			Policy:          p,
			Seed:            3,
			KeepAliveWindow: 15 * time.Minute,
			ControlInterval: time.Minute,
			LocalImages:     true,
		})
		if err != nil {
			log.Fatal(err)
		}

		names := []string{"sensor-ingest", "image-thumb"}
		for i, name := range names {
			rt := hotc.Runtime{
				Image:   "python:3.8",
				Network: "bridge",
				Env:     []string{fmt.Sprintf("FN=%d", i)},
			}
			if err := sim.Deploy(hotc.FunctionSpec{Name: name, Runtime: rt, App: app}); err != nil {
				log.Fatal(err)
			}
		}

		results, err := sim.Replay(workload, func(c int) string { return names[c%len(names)] })
		if err != nil {
			log.Fatal(err)
		}
		st := hotc.Summarize(results)
		fmt.Printf("%-28s %10.1f %10.1f %8d %10d %10.0f\n",
			sim.PolicyName(), st.MeanMS, st.P99MS, st.ColdStarts,
			sim.LiveContainers(), sim.HostMemMB())
		sim.Close()
	}
	fmt.Println("\nHotC keeps edge latency near the warm floor while holding far fewer containers than fixed keep-alive.")
}
