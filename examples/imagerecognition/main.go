// Image recognition: the paper's Fig. 8 scenario. Two ML inference
// applications — the Python inception-v3 app and the Go
// TensorFlow-API app — run with and without HotC, on the server
// profile (bridge networking) and on the Raspberry Pi edge profile
// (overlay networking), printing the execution-time reduction runtime
// reuse delivers on each.
//
// Run with:
//
//	go run ./examples/imagerecognition
package main

import (
	"fmt"
	"log"
	"time"

	"hotc"
)

func measure(profile hotc.Profile, policy hotc.Policy, network string, app hotc.App) float64 {
	sim, err := hotc.NewSimulation(hotc.Config{
		Profile:     profile,
		Policy:      policy,
		Seed:        7,
		LocalImages: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()

	if err := sim.Deploy(hotc.FunctionSpec{
		Name:    app.Name,
		Runtime: hotc.Runtime{Image: app.Image, Network: network},
		App:     app,
	}); err != nil {
		log.Fatal(err)
	}
	// Eleven runs five minutes apart; like the paper we report the
	// mean of the ten steady-state runs.
	results, err := sim.Replay(hotc.SerialWorkload(5*time.Minute, 11), nil)
	if err != nil {
		log.Fatal(err)
	}
	sum, n := 0.0, 0
	for _, r := range results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		if policy == hotc.PolicyHotC && r.Round == 0 {
			continue // warmup run
		}
		sum += float64(r.Latency) / float64(time.Millisecond)
		n++
	}
	return sum / float64(n)
}

func main() {
	hosts := []struct {
		profile hotc.Profile
		network string
	}{
		{hotc.ProfileServer, "bridge"},
		{hotc.ProfileEdgePi, "overlay"},
	}
	apps := []hotc.App{hotc.AppV3(), hotc.AppTFAPI()}

	for _, h := range hosts {
		fmt.Printf("--- %s (%s networking) ---\n", h.profile, h.network)
		for _, app := range apps {
			base := measure(h.profile, hotc.PolicyCold, h.network, app)
			warm := measure(h.profile, hotc.PolicyHotC, h.network, app)
			fmt.Printf("%-12s w/o HotC %9.0fms   w/ HotC %9.0fms   reduction %.1f%%\n",
				app.Name, base, warm, 100*(1-warm/base))
		}
		fmt.Println()
	}
	fmt.Println("Paper (Fig. 8): server reductions 33.2% / 23.9%; edge 26.6% / 20.6%.")
}
