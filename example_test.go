package hotc_test

import (
	"fmt"
	"time"

	"hotc"
)

// ExampleNewSimulation shows the minimal HotC deployment: one
// function, a serial request stream, and the cold-start count.
func ExampleNewSimulation() {
	sim, err := hotc.NewSimulation(hotc.Config{
		Policy:      hotc.PolicyHotC,
		LocalImages: true,
	})
	if err != nil {
		panic(err)
	}
	defer sim.Close()

	app, _ := hotc.AppQR("python")
	if err := sim.Deploy(hotc.FunctionSpec{
		Name:    "url2qr",
		Runtime: hotc.Runtime{Image: "python:3.8"},
		App:     app,
	}); err != nil {
		panic(err)
	}

	results, err := sim.Replay(hotc.SerialWorkload(30*time.Second, 10), nil)
	if err != nil {
		panic(err)
	}
	st := hotc.Summarize(results)
	fmt.Printf("requests=%d cold=%d reused=%d\n", st.Requests, st.ColdStarts, st.Reused)
	// Output: requests=10 cold=1 reused=9
}

// ExampleParseCommand runs the Parameter Analysis stage on a
// docker-run-style command and prints the canonical pool key.
func ExampleParseCommand() {
	rt, err := hotc.ParseCommand([]string{"--net", "host", "-e", "MODE=prod", "python:3.8", "app.py"})
	if err != nil {
		panic(err)
	}
	fmt.Println(rt.Key())
	// Output: img=python:3.8;net=host;uts=;ipc=;env=MODE=prod;vol=;mem=0;cpu=0;ep=;cmd=app.py;
}

// ExampleNewPredictor demonstrates one-step-ahead demand forecasting
// with the paper's combined ES+Markov predictor.
func ExampleNewPredictor() {
	p := hotc.NewPredictor()
	for _, demand := range []float64{8, 8, 9, 8, 8, 19, 19, 18} {
		p.Observe(demand)
	}
	fmt.Printf("next interval forecast: %.0f containers\n", p.Predict())
	// Output: next interval forecast: 19 containers
}

// ExampleSimulation_ReplayChain pushes requests through a function
// pipeline (the paper's image-processing scenario).
func ExampleSimulation_ReplayChain() {
	sim, err := hotc.NewSimulation(hotc.Config{Policy: hotc.PolicyHotC, LocalImages: true})
	if err != nil {
		panic(err)
	}
	defer sim.Close()

	for _, name := range []string{"compress", "watermark"} {
		app, _ := hotc.AppQR("python")
		if err := sim.Deploy(hotc.FunctionSpec{
			Name:    name,
			Runtime: hotc.Runtime{Image: "python:3.8", Env: []string{"STAGE=" + name}},
			App:     app,
		}); err != nil {
			panic(err)
		}
	}
	results, err := sim.ReplayChain(hotc.SerialWorkload(time.Minute, 3), []string{"compress", "watermark"})
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		fmt.Printf("photo %d: %d/%d stages cold\n", i+1, r.ColdStages, r.Stages)
	}
	// Output:
	// photo 1: 2/2 stages cold
	// photo 2: 0/2 stages cold
	// photo 3: 0/2 stages cold
}
